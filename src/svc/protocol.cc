#include "svc/protocol.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/journal.hh"
#include "util/logging.hh"

namespace fo4::svc
{

namespace
{

using util::ErrorCode;
using util::SvcError;

void
putU16(unsigned char *p, std::uint16_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
}

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

std::uint16_t
getU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(
        p[0] | static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

[[noreturn]] void
throwProtocol(const std::string &what)
{
    throw SvcError(ErrorCode::Protocol, "wire protocol: " + what);
}

/** Split `body` into lines (no trailing-newline requirement). */
std::vector<std::string_view>
splitLines(std::string_view body)
{
    std::vector<std::string_view> lines;
    std::size_t start = 0;
    while (start <= body.size()) {
        const auto nl = body.find('\n', start);
        if (nl == std::string_view::npos) {
            if (start < body.size())
                lines.push_back(body.substr(start));
            break;
        }
        lines.push_back(body.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

/** Split "key=value"; throws Protocol when '=' is missing. */
std::pair<std::string_view, std::string_view>
splitKeyValue(std::string_view line)
{
    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
        throwProtocol(util::strprintf("line '%.*s' is not key=value",
                                      static_cast<int>(line.size()),
                                      line.data()));
    return {line.substr(0, eq), line.substr(eq + 1)};
}

std::uint64_t
parseU64(std::string_view text, const char *what)
{
    const std::string copy(text);
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
    if (end == copy.c_str() || *end != '\0' || errno != 0 ||
        copy.find('-') != std::string::npos) {
        throwProtocol(util::strprintf("%s: '%s' is not an unsigned "
                                      "integer",
                                      what, copy.c_str()));
    }
    return v;
}

double
parseHexDouble(std::string_view text, const char *what)
{
    const std::string copy(text);
    char *end = nullptr;
    const double v = std::strtod(copy.c_str(), &end);
    if (end == copy.c_str() || *end != '\0') {
        throwProtocol(util::strprintf("%s: '%s' is not a number", what,
                                      copy.c_str()));
    }
    return v;
}

/** Split on tabs (fields themselves are escapeField-escaped). */
std::vector<std::string_view>
splitTabs(std::string_view line)
{
    std::vector<std::string_view> fields;
    std::size_t start = 0;
    for (;;) {
        const auto tab = line.find('\t', start);
        if (tab == std::string_view::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, tab - start));
        start = tab + 1;
    }
}

trace::BenchClass
benchClassFromInt(std::uint64_t v)
{
    if (v > static_cast<std::uint64_t>(trace::BenchClass::NonVectorFp))
        throwProtocol(util::strprintf("unknown benchmark class %llu",
                                      static_cast<unsigned long long>(v)));
    return static_cast<trace::BenchClass>(v);
}

} // namespace

bool
msgTypeKnown(std::uint16_t raw)
{
    switch (static_cast<MsgType>(raw)) {
      case MsgType::SubmitSweep:
      case MsgType::Poll:
      case MsgType::FetchResults:
      case MsgType::Cancel:
      case MsgType::Stats:
      case MsgType::Workers:
      case MsgType::WorkerHello:
      case MsgType::LeaseRequest:
      case MsgType::CellDone:
      case MsgType::Heartbeat:
      case MsgType::SubmitOk:
      case MsgType::JobStatus:
      case MsgType::Results:
      case MsgType::CancelOk:
      case MsgType::StatsReport:
      case MsgType::Error:
      case MsgType::HelloOk:
      case MsgType::CellLease:
      case MsgType::NoWork:
      case MsgType::DoneOk:
      case MsgType::HeartbeatOk:
      case MsgType::WorkerReport:
        return true;
    }
    return false;
}

std::string
encodeFrame(MsgType type, std::string_view body)
{
    FO4_ASSERT(body.size() + 4 <= kMaxPayloadBytes,
               "frame body too large (%zu bytes)", body.size());
    std::string payload;
    payload.resize(4);
    auto *words = reinterpret_cast<unsigned char *>(payload.data());
    putU16(words, kProtocolVersion);
    putU16(words + 2, static_cast<std::uint16_t>(type));
    payload.append(body);

    std::string frame;
    frame.resize(kFrameHeaderBytes);
    auto *head = reinterpret_cast<unsigned char *>(frame.data());
    putU32(head, static_cast<std::uint32_t>(payload.size()));
    putU32(head + 4, util::crc32(payload.data(), payload.size()));
    frame.append(payload);
    return frame;
}

FrameHeader
decodeFrameHeader(const unsigned char (&header)[kFrameHeaderBytes])
{
    FrameHeader h;
    h.payloadBytes = getU32(header);
    h.crc = getU32(header + 4);
    // Bound-check before anyone allocates: a corrupt length word must
    // cost a typed error, not a 4 GiB allocation.
    if (h.payloadBytes > kMaxPayloadBytes) {
        throwProtocol(util::strprintf(
            "oversize frame: length word %u exceeds the %u-byte limit",
            h.payloadBytes, kMaxPayloadBytes));
    }
    if (h.payloadBytes < 4) {
        throwProtocol(util::strprintf(
            "runt frame: %u-byte payload cannot hold version and type",
            h.payloadBytes));
    }
    return h;
}

Frame
decodePayload(const FrameHeader &header, std::string_view payload)
{
    if (payload.size() != header.payloadBytes) {
        throwProtocol(util::strprintf(
            "payload size %zu does not match the header's %u",
            payload.size(), header.payloadBytes));
    }
    if (const std::uint32_t computed =
            util::crc32(payload.data(), payload.size());
        computed != header.crc) {
        throwProtocol(util::strprintf(
            "payload CRC mismatch (stored %08x, computed %08x)",
            header.crc, computed));
    }
    const auto *words =
        reinterpret_cast<const unsigned char *>(payload.data());
    if (const std::uint16_t version = getU16(words);
        version != kProtocolVersion) {
        throwProtocol(util::strprintf(
            "protocol version %u, this build speaks %u", version,
            kProtocolVersion));
    }
    const std::uint16_t rawType = getU16(words + 2);
    if (!msgTypeKnown(rawType))
        throwProtocol(util::strprintf("unknown record type %u", rawType));

    Frame frame;
    frame.type = static_cast<MsgType>(rawType);
    frame.body.assign(payload.substr(4));
    return frame;
}

std::optional<Frame>
readFrame(util::TcpStream &stream, int timeoutMs)
{
    unsigned char header[kFrameHeaderBytes];
    if (!stream.readExact(header, sizeof(header), timeoutMs))
        return std::nullopt; // orderly EOF between frames
    const FrameHeader h = decodeFrameHeader(header);
    std::string payload;
    payload.resize(h.payloadBytes);
    if (!stream.readExact(payload.data(), payload.size(), timeoutMs)) {
        throwProtocol(util::strprintf(
            "truncated frame: peer closed before %u payload bytes",
            h.payloadBytes));
    }
    return decodePayload(h, payload);
}

void
writeFrame(util::TcpStream &stream, MsgType type, std::string_view body,
           int timeoutMs)
{
    const std::string frame = encodeFrame(type, body);
    stream.writeAll(frame.data(), frame.size(), timeoutMs);
}

std::string
escapeField(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '\\') {
            out += text[i];
            continue;
        }
        if (i + 1 >= text.size())
            throwProtocol("dangling escape at end of field");
        switch (text[++i]) {
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          default:
            throwProtocol(util::strprintf("unknown escape '\\%c'",
                                          text[i]));
        }
    }
    return out;
}

std::string
SweepRequest::encode() const
{
    std::string out;
    out += "model=" + model + "\n";
    out += "predictor=" + predictor + "\n";
    out += util::strprintf("instructions=%llu\n",
                           static_cast<unsigned long long>(instructions));
    out += util::strprintf("warmup=%llu\n",
                           static_cast<unsigned long long>(warmup));
    out += util::strprintf("prewarm=%llu\n",
                           static_cast<unsigned long long>(prewarm));
    out += util::strprintf("cycle_limit=%llu\n",
                           static_cast<unsigned long long>(cycleLimit));
    out += util::strprintf("overhead=%a\n", overheadFo4);
    // The default tenant is omitted, keeping pre-tenant request bodies
    // byte-stable.
    if (!tenant.empty())
        out += "tenant=" + tenant + "\n";
    // A deterministic sweep (mcSamples == 0) omits every mc_* field,
    // keeping pre-v4 request bodies byte-stable.
    if (mcSamples > 0) {
        out += util::strprintf("mc_samples=%llu\n",
                               static_cast<unsigned long long>(mcSamples));
        out += "mc_dist=" + mcDist + "\n";
        out += util::strprintf("mc_sigma_latch=%a\n", mcSigmaLatch);
        out += util::strprintf("mc_sigma_skew=%a\n", mcSigmaSkew);
        out += util::strprintf("mc_sigma_jitter=%a\n", mcSigmaJitter);
        out += util::strprintf("mc_sigma_die=%a\n", mcSigmaDie);
        out += util::strprintf("mc_seed=%llu\n",
                               static_cast<unsigned long long>(mcSeed));
    }
    out += "t_useful=";
    for (std::size_t i = 0; i < tUseful.size(); ++i)
        out += util::strprintf(i ? " %a" : "%a", tUseful[i]);
    out += "\n";
    for (const auto &job : jobs) {
        out += util::strprintf(
            "job=%s\t%d\t%llu\t%s", job.fromTrace ? "trace" : "profile",
            static_cast<int>(job.cls),
            static_cast<unsigned long long>(job.cycleLimit),
            escapeField(job.name).c_str());
        if (job.fromTrace) {
            out += '\t';
            out += escapeField(job.tracePath);
        }
        out += "\n";
    }
    return out;
}

SweepRequest
SweepRequest::decode(std::string_view body)
{
    SweepRequest req;
    req.tUseful.clear();
    req.jobs.clear();
    bool sawUseful = false;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "model") {
            req.model = std::string(value);
            if (req.model != "ooo" && req.model != "inorder")
                throwProtocol("model must be 'ooo' or 'inorder', got '" +
                              req.model + "'");
        } else if (key == "predictor") {
            req.predictor = std::string(value);
        } else if (key == "instructions") {
            req.instructions = parseU64(value, "instructions");
        } else if (key == "warmup") {
            req.warmup = parseU64(value, "warmup");
        } else if (key == "prewarm") {
            req.prewarm = parseU64(value, "prewarm");
        } else if (key == "cycle_limit") {
            req.cycleLimit = parseU64(value, "cycle_limit");
        } else if (key == "overhead") {
            req.overheadFo4 = parseHexDouble(value, "overhead");
        } else if (key == "tenant") {
            req.tenant = std::string(value);
            if (req.tenant.empty() || req.tenant.size() > 64)
                throwProtocol("tenant must be 1..64 characters");
            for (const char c : req.tenant) {
                const bool ok = (c >= 'a' && c <= 'z') ||
                                (c >= 'A' && c <= 'Z') ||
                                (c >= '0' && c <= '9') || c == '.' ||
                                c == '_' || c == '-';
                if (!ok) {
                    throwProtocol(
                        "tenant may only contain [A-Za-z0-9._-]");
                }
            }
        } else if (key == "mc_samples") {
            req.mcSamples = parseU64(value, "mc_samples");
        } else if (key == "mc_dist") {
            req.mcDist = std::string(value);
            if (req.mcDist != "normal" && req.mcDist != "lognormal") {
                throwProtocol(
                    "mc_dist must be 'normal' or 'lognormal', got '" +
                    req.mcDist + "'");
            }
        } else if (key == "mc_sigma_latch") {
            req.mcSigmaLatch = parseHexDouble(value, "mc_sigma_latch");
        } else if (key == "mc_sigma_skew") {
            req.mcSigmaSkew = parseHexDouble(value, "mc_sigma_skew");
        } else if (key == "mc_sigma_jitter") {
            req.mcSigmaJitter = parseHexDouble(value, "mc_sigma_jitter");
        } else if (key == "mc_sigma_die") {
            req.mcSigmaDie = parseHexDouble(value, "mc_sigma_die");
        } else if (key == "mc_seed") {
            req.mcSeed = parseU64(value, "mc_seed");
        } else if (key == "t_useful") {
            sawUseful = true;
            std::size_t start = 0;
            const std::string text(value);
            while (start < text.size()) {
                auto space = text.find(' ', start);
                if (space == std::string::npos)
                    space = text.size();
                if (space > start) {
                    req.tUseful.push_back(parseHexDouble(
                        text.substr(start, space - start), "t_useful"));
                }
                start = space + 1;
            }
        } else if (key == "job") {
            const auto fields = splitTabs(value);
            if (fields.size() < 4)
                throwProtocol("job line needs kind, class, cycle_limit "
                              "and name");
            WireJob job;
            if (fields[0] == "profile") {
                job.fromTrace = false;
                if (fields.size() != 4)
                    throwProtocol("profile job takes exactly 4 fields");
            } else if (fields[0] == "trace") {
                job.fromTrace = true;
                if (fields.size() != 5)
                    throwProtocol("trace job takes exactly 5 fields");
                job.tracePath = unescapeField(fields[4]);
            } else {
                throwProtocol("job kind must be 'profile' or 'trace', "
                              "got '" +
                              std::string(fields[0]) + "'");
            }
            job.cls = benchClassFromInt(parseU64(fields[1], "job class"));
            job.cycleLimit = parseU64(fields[2], "job cycle_limit");
            job.name = unescapeField(fields[3]);
            if (job.name.empty())
                throwProtocol("job name is empty");
            req.jobs.push_back(std::move(job));
        } else {
            throwProtocol("unknown request field '" + std::string(key) +
                          "'");
        }
    }
    if (!sawUseful || req.tUseful.empty())
        throwProtocol("request has no t_useful axis");
    if (req.jobs.empty())
        throwProtocol("request has no jobs");
    return req;
}

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "Queued";
      case JobState::Running:
        return "Running";
      case JobState::Done:
        return "Done";
      case JobState::Failed:
        return "Failed";
      case JobState::Cancelled:
        return "Cancelled";
    }
    return "Unknown";
}

JobState
jobStateFromName(const std::string &name)
{
    for (const JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Failed, JobState::Cancelled}) {
        if (name == jobStateName(s))
            return s;
    }
    throwProtocol("unknown job state '" + name + "'");
}

std::string
JobStatusInfo::encode() const
{
    std::string out;
    out += util::strprintf("id=%llu\n",
                           static_cast<unsigned long long>(id));
    out += std::string("state=") + jobStateName(state) + "\n";
    out += util::strprintf("queue_position=%llu\n",
                           static_cast<unsigned long long>(queuePosition));
    out += util::strprintf("cells_total=%llu\n",
                           static_cast<unsigned long long>(cellsTotal));
    out += util::strprintf("cells_started=%llu\n",
                           static_cast<unsigned long long>(cellsStarted));
    out += util::strprintf("cells_done=%llu\n",
                           static_cast<unsigned long long>(cellsDone));
    out += std::string("error_code=") + util::errorCodeName(errorCode) +
           "\n";
    out += "error_message=" + escapeField(errorMessage) + "\n";
    return out;
}

JobStatusInfo
JobStatusInfo::decode(std::string_view body)
{
    JobStatusInfo info;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "id")
            info.id = parseU64(value, "id");
        else if (key == "state")
            info.state = jobStateFromName(std::string(value));
        else if (key == "queue_position")
            info.queuePosition = parseU64(value, "queue_position");
        else if (key == "cells_total")
            info.cellsTotal = parseU64(value, "cells_total");
        else if (key == "cells_started")
            info.cellsStarted = parseU64(value, "cells_started");
        else if (key == "cells_done")
            info.cellsDone = parseU64(value, "cells_done");
        else if (key == "error_code")
            info.errorCode = util::errorCodeFromName(std::string(value));
        else if (key == "error_message")
            info.errorMessage = unescapeField(value);
        else
            throwProtocol("unknown status field '" + std::string(key) +
                          "'");
    }
    return info;
}

std::string
StatsSnapshot::encode() const
{
    std::string out;
    const auto u64 = [&out](const char *key, std::uint64_t v) {
        out += util::strprintf("%s=%llu\n", key,
                               static_cast<unsigned long long>(v));
    };
    u64("queue_depth", queueDepth);
    u64("max_queue", maxQueue);
    u64("running_jobs", runningJobs);
    u64("running_cells_started", runningCellsStarted);
    u64("running_cells_total", runningCellsTotal);
    u64("submitted", submitted);
    u64("rejected", rejected);
    u64("completed", completed);
    u64("failed", failed);
    u64("cancelled", cancelled);
    u64("cache_bytes", cacheBytes);
    u64("cache_entries", cacheEntries);
    out += "latency_buckets=";
    for (std::size_t i = 0; i < latencyBuckets.size(); ++i) {
        out += util::strprintf(
            i ? " %llu" : "%llu",
            static_cast<unsigned long long>(latencyBuckets[i]));
    }
    out += "\n";
    u64("latency_samples", latencySamples);
    out += util::strprintf("latency_mean_ms=%a\n", latencyMeanMs);
    for (const auto &[name, value] : counters) {
        out += util::strprintf(
            "counter=%s\t%llu\n", escapeField(name).c_str(),
            static_cast<unsigned long long>(value));
    }
    return out;
}

StatsSnapshot
StatsSnapshot::decode(std::string_view body)
{
    StatsSnapshot s;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "queue_depth")
            s.queueDepth = parseU64(value, "queue_depth");
        else if (key == "max_queue")
            s.maxQueue = parseU64(value, "max_queue");
        else if (key == "running_jobs")
            s.runningJobs = parseU64(value, "running_jobs");
        else if (key == "running_cells_started")
            s.runningCellsStarted = parseU64(value, "running_cells_started");
        else if (key == "running_cells_total")
            s.runningCellsTotal = parseU64(value, "running_cells_total");
        else if (key == "submitted")
            s.submitted = parseU64(value, "submitted");
        else if (key == "rejected")
            s.rejected = parseU64(value, "rejected");
        else if (key == "completed")
            s.completed = parseU64(value, "completed");
        else if (key == "failed")
            s.failed = parseU64(value, "failed");
        else if (key == "cancelled")
            s.cancelled = parseU64(value, "cancelled");
        else if (key == "cache_bytes")
            s.cacheBytes = parseU64(value, "cache_bytes");
        else if (key == "cache_entries")
            s.cacheEntries = parseU64(value, "cache_entries");
        else if (key == "latency_buckets") {
            std::size_t start = 0;
            const std::string text(value);
            while (start < text.size()) {
                auto space = text.find(' ', start);
                if (space == std::string::npos)
                    space = text.size();
                if (space > start) {
                    s.latencyBuckets.push_back(
                        parseU64(text.substr(start, space - start),
                                 "latency_buckets"));
                }
                start = space + 1;
            }
        } else if (key == "latency_samples")
            s.latencySamples = parseU64(value, "latency_samples");
        else if (key == "latency_mean_ms")
            s.latencyMeanMs = parseHexDouble(value, "latency_mean_ms");
        else if (key == "counter") {
            const auto fields = splitTabs(value);
            if (fields.size() != 2)
                throwProtocol("counter line takes name and value");
            s.counters.emplace_back(unescapeField(fields[0]),
                                    parseU64(fields[1], "counter"));
        } else
            throwProtocol("unknown stats field '" + std::string(key) +
                          "'");
    }
    return s;
}

std::string
WorkerHelloInfo::encode() const
{
    return util::strprintf("name=%s\nthreads=%llu\n",
                           escapeField(name).c_str(),
                           static_cast<unsigned long long>(threads));
}

WorkerHelloInfo
WorkerHelloInfo::decode(std::string_view body)
{
    WorkerHelloInfo info;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "name")
            info.name = unescapeField(value);
        else if (key == "threads")
            info.threads = parseU64(value, "threads");
        else
            throwProtocol("unknown hello field '" + std::string(key) +
                          "'");
    }
    if (info.threads == 0)
        throwProtocol("worker hello declares zero threads");
    return info;
}

std::string
HelloOkInfo::encode() const
{
    return util::strprintf(
        "worker_id=%llu\nheartbeat_ms=%llu\nlease_timeout_ms=%llu\n",
        static_cast<unsigned long long>(workerId),
        static_cast<unsigned long long>(heartbeatMs),
        static_cast<unsigned long long>(leaseTimeoutMs));
}

HelloOkInfo
HelloOkInfo::decode(std::string_view body)
{
    HelloOkInfo info;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "worker_id")
            info.workerId = parseU64(value, "worker_id");
        else if (key == "heartbeat_ms")
            info.heartbeatMs = parseU64(value, "heartbeat_ms");
        else if (key == "lease_timeout_ms")
            info.leaseTimeoutMs = parseU64(value, "lease_timeout_ms");
        else
            throwProtocol("unknown hello-ok field '" + std::string(key) +
                          "'");
    }
    return info;
}

std::string
CellLeaseInfo::encode() const
{
    return util::strprintf(
        "sweep=%llu\npoint=%llu\njob=%llu\nrequest=%s\n",
        static_cast<unsigned long long>(sweep),
        static_cast<unsigned long long>(point),
        static_cast<unsigned long long>(job),
        escapeField(requestBody).c_str());
}

CellLeaseInfo
CellLeaseInfo::decode(std::string_view body)
{
    CellLeaseInfo info;
    bool sawRequest = false;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "sweep")
            info.sweep = parseU64(value, "sweep");
        else if (key == "point")
            info.point = parseU64(value, "point");
        else if (key == "job")
            info.job = parseU64(value, "job");
        else if (key == "request") {
            info.requestBody = unescapeField(value);
            sawRequest = true;
        } else
            throwProtocol("unknown lease field '" + std::string(key) +
                          "'");
    }
    if (!sawRequest)
        throwProtocol("cell lease has no request body");
    return info;
}

std::string
CellDoneInfo::encode() const
{
    // The escaped payload is still binary (escapeField keeps everything
    // but backslash/newline/tab verbatim, NUL bytes included), so it
    // must be appended as bytes — %s would stop at the first NUL.
    std::string body = util::strprintf(
        "worker_id=%llu\nsweep=%llu\npoint=%llu\njob=%llu\ncell=",
        static_cast<unsigned long long>(workerId),
        static_cast<unsigned long long>(sweep),
        static_cast<unsigned long long>(point),
        static_cast<unsigned long long>(job));
    body += escapeField(cellPayload);
    body += '\n';
    return body;
}

CellDoneInfo
CellDoneInfo::decode(std::string_view body)
{
    CellDoneInfo info;
    bool sawCell = false;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "worker_id")
            info.workerId = parseU64(value, "worker_id");
        else if (key == "sweep")
            info.sweep = parseU64(value, "sweep");
        else if (key == "point")
            info.point = parseU64(value, "point");
        else if (key == "job")
            info.job = parseU64(value, "job");
        else if (key == "cell") {
            info.cellPayload = unescapeField(value);
            sawCell = true;
        } else
            throwProtocol("unknown cell-done field '" + std::string(key) +
                          "'");
    }
    if (!sawCell)
        throwProtocol("cell-done has no cell payload");
    return info;
}

const char *
workerStateName(WorkerState state)
{
    switch (state) {
      case WorkerState::Live:
        return "Live";
      case WorkerState::Suspect:
        return "Suspect";
      case WorkerState::Dead:
        return "Dead";
    }
    return "Unknown";
}

WorkerState
workerStateFromName(const std::string &name)
{
    for (const WorkerState s :
         {WorkerState::Live, WorkerState::Suspect, WorkerState::Dead}) {
        if (name == workerStateName(s))
            return s;
    }
    throwProtocol("unknown worker state '" + name + "'");
}

std::string
WorkerSnapshot::encodeList(const std::vector<WorkerSnapshot> &rows)
{
    std::string out;
    for (const auto &w : rows) {
        out += util::strprintf(
            "worker=%llu\t%s\t%s\t%llu\t%llu\t%llu\n",
            static_cast<unsigned long long>(w.id),
            escapeField(w.name).c_str(), workerStateName(w.state),
            static_cast<unsigned long long>(w.activeLeases),
            static_cast<unsigned long long>(w.cellsCompleted),
            static_cast<unsigned long long>(w.heartbeatAgeMs));
    }
    return out;
}

std::vector<WorkerSnapshot>
WorkerSnapshot::decodeList(std::string_view body)
{
    std::vector<WorkerSnapshot> rows;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key != "worker")
            throwProtocol("unknown worker-report field '" +
                          std::string(key) + "'");
        const auto fields = splitTabs(value);
        if (fields.size() != 6)
            throwProtocol("worker line takes id, name, state, leases, "
                          "completed and heartbeat age");
        WorkerSnapshot w;
        w.id = parseU64(fields[0], "worker id");
        w.name = unescapeField(fields[1]);
        w.state = workerStateFromName(std::string(fields[2]));
        w.activeLeases = parseU64(fields[3], "active leases");
        w.cellsCompleted = parseU64(fields[4], "cells completed");
        w.heartbeatAgeMs = parseU64(fields[5], "heartbeat age");
        rows.push_back(std::move(w));
    }
    return rows;
}

namespace
{

/** Shared shape of the one-field numeric bodies. */
std::string
encodeOneU64(const char *key, std::uint64_t v)
{
    return util::strprintf("%s=%llu\n", key,
                           static_cast<unsigned long long>(v));
}

std::uint64_t
decodeOneU64(std::string_view body, const char *key)
{
    std::optional<std::uint64_t> v;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [k, value] = splitKeyValue(line);
        if (k != key) {
            throwProtocol(util::strprintf("unknown %s field '%.*s'", key,
                                          static_cast<int>(k.size()),
                                          k.data()));
        }
        v = parseU64(value, key);
    }
    if (!v)
        throwProtocol(util::strprintf("body has no %s", key));
    return *v;
}

bool
decodeOneFlag(std::string_view body, const char *key)
{
    const std::uint64_t v = decodeOneU64(body, key);
    if (v > 1)
        throwProtocol(util::strprintf("%s must be 0 or 1", key));
    return v != 0;
}

} // namespace

std::string
encodeWorkerId(std::uint64_t id)
{
    return encodeOneU64("worker_id", id);
}

std::uint64_t
decodeWorkerId(std::string_view body)
{
    return decodeOneU64(body, "worker_id");
}

std::string
encodeRetryMs(std::uint64_t retryMs)
{
    return encodeOneU64("retry_ms", retryMs);
}

std::uint64_t
decodeRetryMs(std::string_view body)
{
    return decodeOneU64(body, "retry_ms");
}

std::string
encodeAccepted(bool accepted)
{
    return encodeOneU64("accepted", accepted ? 1 : 0);
}

bool
decodeAccepted(std::string_view body)
{
    return decodeOneFlag(body, "accepted");
}

std::string
encodeKnown(bool known)
{
    return encodeOneU64("known", known ? 1 : 0);
}

bool
decodeKnown(std::string_view body)
{
    return decodeOneFlag(body, "known");
}

std::string
encodeError(util::ErrorCode code, std::string_view message)
{
    return std::string("code=") + util::errorCodeName(code) +
           "\nmessage=" + escapeField(message) + "\n";
}

std::pair<util::ErrorCode, std::string>
decodeError(std::string_view body)
{
    util::ErrorCode code = ErrorCode::Internal;
    std::string message;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "code")
            code = util::errorCodeFromName(std::string(value));
        else if (key == "message")
            message = unescapeField(value);
        else
            throwProtocol("unknown error field '" + std::string(key) +
                          "'");
    }
    return {code, message};
}

std::string
encodeId(std::uint64_t id)
{
    return util::strprintf("id=%llu\n",
                           static_cast<unsigned long long>(id));
}

std::uint64_t
decodeId(std::string_view body)
{
    std::optional<std::uint64_t> id;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key != "id")
            throwProtocol("unknown id field '" + std::string(key) + "'");
        id = parseU64(value, "id");
    }
    if (!id)
        throwProtocol("request body has no id");
    return *id;
}

std::string
encodeSubmitOk(std::uint64_t id, std::uint64_t cellsTotal)
{
    return util::strprintf("id=%llu\ncells_total=%llu\n",
                           static_cast<unsigned long long>(id),
                           static_cast<unsigned long long>(cellsTotal));
}

std::pair<std::uint64_t, std::uint64_t>
decodeSubmitOk(std::string_view body)
{
    std::uint64_t id = 0;
    std::uint64_t cells = 0;
    for (const auto line : splitLines(body)) {
        if (line.empty())
            continue;
        const auto [key, value] = splitKeyValue(line);
        if (key == "id")
            id = parseU64(value, "id");
        else if (key == "cells_total")
            cells = parseU64(value, "cells_total");
        else
            throwProtocol("unknown submit-ok field '" +
                          std::string(key) + "'");
    }
    return {id, cells};
}

} // namespace fo4::svc
