#include "svc/coordinator.hh"

#include <chrono>
#include <cmath>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

namespace
{

using util::ErrorCode;
using util::SvcError;

/** Same log2 latency bucketing as the daemon (svc/server.cc); both
 *  feed the shared "svc.sweep_wall_ms" histogram. */
constexpr std::size_t kLatencyBuckets = 24;

std::uint64_t
latencyBucketOf(double wallMs)
{
    if (wallMs < 1.0)
        return 0;
    return static_cast<std::uint64_t>(std::log2(wallMs + 1.0));
}

util::MetricHistogram &
latencyHistogram()
{
    return util::MetricsRegistry::global().histogram("svc.sweep_wall_ms",
                                                     kLatencyBuckets);
}

util::MetricCounter &
fabricCounter(const char *name)
{
    return util::MetricsRegistry::global().counter(name);
}

std::chrono::milliseconds
ms(std::uint64_t v)
{
    return std::chrono::milliseconds(v);
}

} // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : SessionServer(options.port, options.maxQueue, options.tenantQuota),
      opts(std::move(options)), fleet(opts.detector)
{
    if (!opts.cacheDir.empty())
        store = std::make_unique<ResultStore>(opts.cacheDir,
                                              opts.cacheMaxBytes);
    dispatchThread = std::thread([this] { dispatchLoop(); });
    startAccepting();
}

Coordinator::~Coordinator()
{
    stop();
    join();
}

void
Coordinator::stop()
{
    SessionServer::stop();
    // Wake the tick loop so a running sweep notices the drain now, not
    // a tick later.
    std::lock_guard<std::mutex> lock(fabricMutex);
    fabricCv.notify_all();
}

void
Coordinator::join()
{
    SessionServer::join();
    if (dispatchThread.joinable())
        dispatchThread.join();
}

// ---------------------------------------------------------------------
// Sweep execution
// ---------------------------------------------------------------------

void
Coordinator::dispatchLoop()
{
    auto &histogram = latencyHistogram();
    auto &workersDead = fabricCounter("svc.fabric.workers_dead");
    while (!stopRequested()) {
        const std::shared_ptr<JobRecord> job = table.takeNext(kTickMs);
        if (!job) {
            // Idle tick: the failure detector must keep judging the
            // fleet between sweeps, or a worker that died after the
            // last sweep would stay Live in the roster forever (and a
            // sweep submitted later would wait a full dead interval to
            // find out).  No active sweep means no leases to reclaim.
            std::lock_guard<std::mutex> lock(fabricMutex);
            for (const std::uint64_t id :
                 fleet.newlyDead(FabricClock::now())) {
                (void)id;
                workersDead.inc();
            }
            continue;
        }
        const auto started = std::chrono::steady_clock::now();
        runOneSweep(job);
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        histogram.sample(latencyBucketOf(wallMs));
    }
}

void
Coordinator::replayJournal(ActiveSweep &sweep)
{
    auto recovered = util::readJournal(sweep.journalPath);
    if (recovered.fingerprint != sweep.fingerprint) {
        throw util::JournalError(
            ErrorCode::ResumeMismatch,
            util::strprintf(
                "journal '%s' was written by a sweep with different "
                "inputs (journal identity %016llx, this sweep %016llx)",
                sweep.journalPath.c_str(),
                static_cast<unsigned long long>(recovered.fingerprint),
                static_cast<unsigned long long>(sweep.fingerprint)));
    }
    const std::size_t nJobs = sweep.plan.jobs.size();
    for (const auto &record : recovered.records) {
        auto cell = study::decodeCellRecord(record, sweep.journalPath);
        if (cell.point >= sweep.plan.points.size() ||
            cell.job >= nJobs) {
            throw util::JournalError(
                ErrorCode::JournalCorrupt,
                util::strprintf(
                    "journal '%s': cell (%zu, %zu) outside the %zux%zu "
                    "grid",
                    sweep.journalPath.c_str(), cell.point, cell.job,
                    sweep.plan.points.size(), nJobs));
        }
        const std::size_t i = cell.point * nJobs + cell.job;
        sweep.scheduler.markDone(cell.point, cell.job);
        sweep.cells[i] = std::move(cell);
    }
    sweep.writer.emplace(
        util::JournalWriter::appendTo(sweep.journalPath, recovered,
                                      /*syncEveryRecord=*/true));
}

std::string
Coordinator::assembleResults(ActiveSweep &sweep, bool executeRemainder,
                             bool *anyFailed)
{
    // One code path for assembly: the same CheckpointedRunner a local
    // run uses, seeded with every fabric-merged cell.  With nothing
    // left to execute this reduces to slotting seeds and rendering;
    // with a remainder (local fallback) it simulates exactly the
    // missing cells — journaling them, so even the fallback is
    // crash-resumable.
    study::CheckpointOptions copts;
    copts.journalPath =
        executeRemainder ? sweep.journalPath : std::string();
    copts.threads = executeRemainder ? opts.localThreads : 1;
    copts.retry = opts.retry;
    copts.cancel = executeRemainder ? &sweep.job->cancel : nullptr;
    copts.seedCells.reserve(sweep.cells.size());
    for (const auto &[i, cell] : sweep.cells)
        copts.seedCells.push_back(cell);
    const std::shared_ptr<JobRecord> job = sweep.job;
    copts.onAttempt = [job](std::size_t, std::size_t, int attempt) {
        if (attempt == 1)
            job->cellsStarted.fetch_add(1, std::memory_order_relaxed);
    };
    study::CheckpointedRunner runner(copts);
    const auto suites =
        runner.runGrid(sweep.plan.points, sweep.plan.jobs,
                       sweep.plan.spec);
    if (anyFailed) {
        *anyFailed = false;
        for (const auto &suite : suites) {
            for (const auto &bench : suite.benchmarks) {
                if (bench.failed())
                    *anyFailed = true;
            }
        }
    }
    return renderResults(sweep.plan, suites);
}

void
Coordinator::runOneSweep(const std::shared_ptr<JobRecord> &job)
{
    auto &redispatched = fabricCounter("svc.fabric.cells_redispatched");
    auto &workersDead = fabricCounter("svc.fabric.workers_dead");
    auto &fallbacks = fabricCounter("svc.fabric.local_fallbacks");

    // Any exit path must tear the active sweep down (closing the
    // journal writer) before the table records a verdict.
    const auto teardown = [this] {
        std::lock_guard<std::mutex> lock(fabricMutex);
        if (active && active->writer)
            active->writer->close();
        active.reset();
    };

    try {
        SweepPlan plan = planSweep(job->request);
        const std::uint64_t fp = planFingerprint(plan);

        // Zero-compute paths first: an identical sweep already finished
        // in this process, then the persistent store.  Either way the
        // bytes are the ones the fabric would compute — the fingerprint
        // pins every input (DESIGN.md §15).
        if (std::optional<std::string> prior =
                table.reuseDoneResult(fp)) {
            fabricCounter("svc.cache.dedup").inc();
            table.markDone(job->id, std::move(*prior));
            return;
        }
        if (store) {
            if (std::optional<std::string> cached =
                    store->fetchSweep(fp)) {
                table.markDone(job->id, std::move(*cached));
                return;
            }
        }

        auto sweep = std::make_unique<ActiveSweep>(
            job, std::move(plan), fp, FabricClock::now());
        if (!opts.checkpointDir.empty()) {
            sweep->journalPath = util::strprintf(
                "%s/sweep-%016llx.journal", opts.checkpointDir.c_str(),
                static_cast<unsigned long long>(fp));
            if (util::journalExists(sweep->journalPath))
                replayJournal(*sweep);
            else
                sweep->writer.emplace(util::JournalWriter::create(
                    sweep->journalPath, fp, /*syncEveryRecord=*/true));
        }
        job->cellsDone.store(sweep->scheduler.doneCount());

        std::string resultBytes;
        bool anyFailed = false;
        {
            std::unique_lock<std::mutex> lock(fabricMutex);
            active = std::move(sweep);
            // The fabric tick: failure detection, lease expiry,
            // completion and fallback checks.  Session threads notify
            // the cv on completions, so a finished sweep finalises
            // immediately rather than a tick later.
            for (;;) {
                ActiveSweep &s = *active;
                if (job->cancel.cancelled() || stopRequested()) {
                    if (s.writer)
                        s.writer->close();
                    active.reset();
                    lock.unlock();
                    table.markCancelled(job->id);
                    return;
                }
                const FabricTime now = FabricClock::now();
                for (const std::uint64_t id : fleet.newlyDead(now)) {
                    workersDead.inc();
                    redispatched.add(s.scheduler.reclaimWorker(id));
                }
                redispatched.add(s.scheduler.reclaimExpired(now));

                if (s.scheduler.finished()) {
                    s.fallback = true; // no further grants or merges
                    if (s.writer)
                        s.writer->close();
                    s.writer.reset();
                    lock.unlock();
                    resultBytes = assembleResults(s, false, &anyFailed);
                    break;
                }
                // Graceful degradation: no live worker left (or none
                // ever arrived within the grace window) — finish the
                // remainder locally, seeded with every merged cell.
                const bool noWorkers = fleet.liveCount() == 0;
                const bool graceOver =
                    fleet.registeredCount() > 0 ||
                    now - s.startedAt >= ms(opts.fallbackGraceMs);
                if (opts.localFallback && noWorkers && graceOver) {
                    fallbacks.inc();
                    s.fallback = true;
                    if (s.writer)
                        s.writer->close();
                    s.writer.reset();
                    lock.unlock();
                    resultBytes = assembleResults(s, true, &anyFailed);
                    break;
                }
                fabricCv.wait_for(lock, ms(
                    static_cast<std::uint64_t>(opts.tickMs)));
            }
        }
        {
            std::lock_guard<std::mutex> lock(fabricMutex);
            active.reset();
        }
        // Only clean sweeps enter the cache: a row's transient failure
        // must not be replayed to later submissions.
        if (store && !anyFailed)
            store->storeSweep(fp, resultBytes);
        table.markDone(job->id, std::move(resultBytes));
    } catch (const util::CancelledError &) {
        // Local fallback drained cooperatively with its journal
        // flushed: cancelled, not failed, and resumable on resubmit.
        teardown();
        table.markCancelled(job->id);
    } catch (const util::SimError &e) {
        teardown();
        table.markFailed(job->id, e.code(), e.what());
    } catch (const std::exception &e) {
        teardown();
        table.markFailed(job->id, ErrorCode::Internal, e.what());
    }
}

// ---------------------------------------------------------------------
// Frame handling
// ---------------------------------------------------------------------

void
Coordinator::handleFrame(util::TcpStream &stream, const Frame &frame)
{
    if (handleClientFrame(stream, frame))
        return;
    switch (frame.type) {
      case MsgType::Workers:
        handleWorkers(stream);
        return;
      case MsgType::WorkerHello:
        handleWorkerHello(stream, frame);
        return;
      case MsgType::LeaseRequest:
        handleLeaseRequest(stream, frame);
        return;
      case MsgType::CellDone:
        handleCellDone(stream, frame);
        return;
      case MsgType::Heartbeat:
        handleHeartbeat(stream, frame);
        return;
      default:
        throw SvcError(
            ErrorCode::Protocol,
            util::strprintf("record type %u is not a request this "
                            "coordinator serves",
                            static_cast<unsigned>(frame.type)));
    }
}

void
Coordinator::handleWorkerHello(util::TcpStream &stream,
                               const Frame &frame)
{
    const WorkerHelloInfo hello = WorkerHelloInfo::decode(frame.body);
    HelloOkInfo ok;
    {
        std::lock_guard<std::mutex> lock(fabricMutex);
        ok.workerId = fleet.registerWorker(hello.name, hello.threads,
                                           FabricClock::now());
        fabricCv.notify_all();
    }
    fabricCounter("svc.fabric.workers_registered").inc();
    ok.heartbeatMs = opts.detector.heartbeatMs;
    ok.leaseTimeoutMs = opts.leaseTimeoutMs;
    writeFrame(stream, MsgType::HelloOk, ok.encode(), kFrameTimeoutMs);
}

void
Coordinator::handleLeaseRequest(util::TcpStream &stream,
                                const Frame &frame)
{
    const std::uint64_t workerId = decodeWorkerId(frame.body);
    // Build the response under the lock, write it after: a slow or
    // black-holed worker must never hold the fabric hostage for the
    // write deadline.  If the write then fails, the lease was granted
    // but never delivered — harmless: it expires and re-dispatches.
    std::optional<std::string> leaseBody;
    bool known = false;
    {
        std::lock_guard<std::mutex> lock(fabricMutex);
        known = fleet.touch(workerId, FabricClock::now());
        if (known && active && !active->fallback &&
            !active->job->cancel.cancelled()) {
            const auto key = active->scheduler.grant(
                workerId, FabricClock::now() + ms(opts.leaseTimeoutMs));
            if (key) {
                CellLeaseInfo lease;
                lease.sweep = active->fingerprint;
                lease.point = key->point;
                lease.job = key->job;
                lease.requestBody = active->requestBody;
                active->job->cellsStarted.fetch_add(
                    1, std::memory_order_relaxed);
                leaseBody = lease.encode();
            }
        }
    }
    if (!known) {
        writeFrame(stream, MsgType::Error,
                   encodeError(ErrorCode::NotFound,
                               util::strprintf(
                                   "unknown or dead worker id %llu — "
                                   "re-register with WorkerHello",
                                   static_cast<unsigned long long>(
                                       workerId))),
                   kFrameTimeoutMs);
        return;
    }
    if (leaseBody) {
        fabricCounter("svc.fabric.cells_leased").inc();
        writeFrame(stream, MsgType::CellLease, *leaseBody,
                   kFrameTimeoutMs);
        return;
    }
    writeFrame(stream, MsgType::NoWork,
               encodeRetryMs(opts.detector.heartbeatMs), kFrameTimeoutMs);
}

void
Coordinator::handleCellDone(util::TcpStream &stream, const Frame &frame)
{
    const CellDoneInfo msg = CellDoneInfo::decode(frame.body);

    // Decode (and bounds-check) before touching fabric state: a
    // corrupt cell payload is a protocol violation by the trust model
    // — refuse the frame, keep the fabric.
    study::CellRecord cell;
    try {
        cell = study::decodeCellRecord(
            msg.cellPayload,
            util::strprintf("worker %llu",
                            static_cast<unsigned long long>(
                                msg.workerId)));
    } catch (const util::JournalError &e) {
        throw SvcError(ErrorCode::Protocol, e.what());
    }
    if (cell.point != msg.point || cell.job != msg.job) {
        throw SvcError(
            ErrorCode::Protocol,
            util::strprintf("cell payload is keyed (%zu, %zu) but the "
                            "frame says (%llu, %llu)",
                            cell.point, cell.job,
                            static_cast<unsigned long long>(msg.point),
                            static_cast<unsigned long long>(msg.job)));
    }

    bool known = false;
    bool accepted = false;
    {
        std::lock_guard<std::mutex> lock(fabricMutex);
        known = fleet.touch(msg.workerId, FabricClock::now());
        if (known && active && !active->fallback &&
            msg.sweep == active->fingerprint) {
            const std::size_t nJobs = active->plan.jobs.size();
            if (cell.point >= active->plan.points.size() ||
                cell.job >= nJobs) {
                throw SvcError(
                    ErrorCode::Protocol,
                    util::strprintf(
                        "cell (%zu, %zu) outside the %zux%zu grid",
                        cell.point, cell.job,
                        active->plan.points.size(), nJobs));
            }
            // First completion wins; duplicates carry byte-identical
            // results (cells are pure), so dropping them is free.
            if (active->scheduler.complete(cell.point, cell.job)) {
                if (active->writer)
                    active->writer->append(msg.cellPayload);
                const std::size_t i = cell.point * nJobs + cell.job;
                active->cells[i] = std::move(cell);
                active->job->cellsDone.fetch_add(
                    1, std::memory_order_relaxed);
                fleet.recordCompletion(msg.workerId);
                accepted = true;
                fabricCv.notify_all();
            }
        }
    }
    if (!known) {
        writeFrame(stream, MsgType::Error,
                   encodeError(ErrorCode::NotFound,
                               util::strprintf(
                                   "unknown or dead worker id %llu — "
                                   "re-register with WorkerHello",
                                   static_cast<unsigned long long>(
                                       msg.workerId))),
                   kFrameTimeoutMs);
        return;
    }
    if (accepted)
        fabricCounter("svc.fabric.cells_merged").inc();
    else
        fabricCounter("svc.fabric.cells_duplicate").inc();
    writeFrame(stream, MsgType::DoneOk, encodeAccepted(accepted),
               kFrameTimeoutMs);
}

void
Coordinator::handleHeartbeat(util::TcpStream &stream, const Frame &frame)
{
    const std::uint64_t workerId = decodeWorkerId(frame.body);
    bool known = false;
    {
        std::lock_guard<std::mutex> lock(fabricMutex);
        known = fleet.touch(workerId, FabricClock::now());
    }
    writeFrame(stream, MsgType::HeartbeatOk, encodeKnown(known),
               kFrameTimeoutMs);
}

void
Coordinator::handleWorkers(util::TcpStream &stream)
{
    std::vector<WorkerSnapshot> rows;
    {
        std::lock_guard<std::mutex> lock(fabricMutex);
        rows = fleet.snapshot(
            FabricClock::now(), [this](std::uint64_t id) {
                return active ? active->scheduler.activeLeases(id) : 0;
            });
    }
    writeFrame(stream, MsgType::WorkerReport,
               WorkerSnapshot::encodeList(rows), kFrameTimeoutMs);
}

StatsSnapshot
Coordinator::buildStats() const
{
    StatsSnapshot s;
    s.queueDepth = table.queueDepth();
    s.maxQueue = table.maxQueue();
    if (const std::shared_ptr<JobRecord> job = table.runningJob()) {
        s.runningJobs = 1;
        s.runningCellsStarted = job->cellsStarted.load();
        s.runningCellsTotal = job->cellsTotal;
    }
    s.submitted = table.submitted();
    s.rejected = table.rejected();
    s.completed = table.completed();
    s.failed = table.failed();
    s.cancelled = table.cancelled();
    if (store) {
        s.cacheBytes = store->blobs().sizeBytes();
        s.cacheEntries = store->blobs().entries();
    }

    const util::MetricHistogram &histogram = latencyHistogram();
    for (std::size_t i = 0; i < histogram.bucketCount(); ++i)
        s.latencyBuckets.push_back(histogram.bucket(i));
    s.latencySamples = histogram.samples();
    s.latencyMeanMs = histogram.mean();

    s.counters = util::MetricsRegistry::global().snapshotCounters();
    return s;
}

} // namespace fo4::svc
