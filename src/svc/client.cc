#include "svc/client.hh"

#include <chrono>
#include <thread>

#include "util/logging.hh"

namespace fo4::svc
{

using util::ErrorCode;
using util::SvcError;

Client::Client(const std::string &host, std::uint16_t port, int timeoutMs)
    : stream(util::TcpStream::connect(host, port)), timeoutMs(timeoutMs)
{
}

Frame
Client::roundTrip(MsgType type, std::string_view body)
{
    writeFrame(stream, type, body);
    const std::optional<Frame> response = readFrame(stream, timeoutMs);
    if (!response) {
        throw SvcError(ErrorCode::NetIo,
                       "server closed the connection without replying");
    }
    if (response->type == MsgType::Error) {
        // Preserve the remote verdict: the caller handles a server-side
        // Overloaded/NotFound/Deadlock exactly like a local one.
        const auto [code, message] = decodeError(response->body);
        throw SvcError(code, message);
    }
    return *response;
}

Frame
Client::expect(MsgType type, std::string_view body, MsgType want)
{
    Frame response = roundTrip(type, body);
    if (response.type != want) {
        throw SvcError(ErrorCode::Protocol,
                       util::strprintf(
                           "expected record type %u, server sent %u",
                           static_cast<unsigned>(want),
                           static_cast<unsigned>(response.type)));
    }
    return response;
}

std::pair<std::uint64_t, std::uint64_t>
Client::submit(const SweepRequest &request)
{
    const Frame response = expect(MsgType::SubmitSweep, request.encode(),
                                  MsgType::SubmitOk);
    return decodeSubmitOk(response.body);
}

JobStatusInfo
Client::poll(std::uint64_t id)
{
    const Frame response =
        expect(MsgType::Poll, encodeId(id), MsgType::JobStatus);
    return JobStatusInfo::decode(response.body);
}

std::string
Client::fetchResults(std::uint64_t id)
{
    Frame response =
        expect(MsgType::FetchResults, encodeId(id), MsgType::Results);
    return std::move(response.body);
}

JobStatusInfo
Client::cancel(std::uint64_t id)
{
    const Frame response =
        expect(MsgType::Cancel, encodeId(id), MsgType::CancelOk);
    return JobStatusInfo::decode(response.body);
}

StatsSnapshot
Client::stats()
{
    const Frame response =
        expect(MsgType::Stats, std::string_view{}, MsgType::StatsReport);
    return StatsSnapshot::decode(response.body);
}

JobStatusInfo
Client::waitUntilDone(std::uint64_t id, int pollMs,
                      const std::function<void(const JobStatusInfo &)>
                          &onStatus)
{
    for (;;) {
        const JobStatusInfo info = poll(id);
        if (onStatus)
            onStatus(info);
        if (info.terminal())
            return info;
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

} // namespace fo4::svc
