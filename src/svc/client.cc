#include "svc/client.hh"

#include <chrono>
#include <thread>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

using util::ErrorCode;
using util::SvcError;

Client::Client(const std::string &hostIn, std::uint16_t portIn,
               Options options)
    : host(hostIn), port(portIn), opts(std::move(options))
{
    if (opts.connectTimeoutMs <= 0 || opts.ioTimeoutMs <= 0) {
        throw util::ConfigError(
            "client timeouts must be positive milliseconds");
    }
    if (const auto st = opts.retry.validate(); !st.isOk())
        throw util::ConfigError("reconnect policy: " + st.message());
    stream = util::TcpStream::connect(host, port, opts.connectTimeoutMs);
}

Client::Client(const std::string &hostIn, std::uint16_t portIn)
    : Client(hostIn, portIn, Options{})
{
}

Client::Client(const std::string &hostIn, std::uint16_t portIn,
               int timeoutMs)
    : Client(hostIn, portIn, Options{.ioTimeoutMs = timeoutMs})
{
}

Frame
Client::roundTrip(MsgType type, std::string_view body, bool idempotent)
{
    auto &reconnects =
        util::MetricsRegistry::global().counter("svc.client.reconnects");
    for (int attempt = 1;; ++attempt) {
        bool wrote = false;
        try {
            if (!stream.connected()) {
                stream = util::TcpStream::connect(host, port,
                                                  opts.connectTimeoutMs);
            }
            writeFrame(stream, type, body, opts.ioTimeoutMs);
            wrote = true;
            const std::optional<Frame> response =
                readFrame(stream, opts.ioTimeoutMs);
            if (!response) {
                throw SvcError(
                    ErrorCode::NetIo,
                    "server closed the connection without replying");
            }
            if (response->type == MsgType::Error) {
                // Preserve the remote verdict: the caller handles a
                // server-side Overloaded/NotFound/Deadlock exactly like
                // a local one.  A verdict is never transport trouble,
                // so it is never retried.
                const auto [code, message] = decodeError(response->body);
                throw SvcError(code, message);
            }
            return *response;
        } catch (const SvcError &e) {
            if (e.code() != ErrorCode::NetIo)
                throw;
            stream.close();
            // A submit whose bytes reached the wire may already be
            // queued server-side; resubmitting would run it twice.
            if (!opts.reconnect || attempt >= opts.retry.maxAttempts ||
                (wrote && !idempotent))
                throw;
            reconnects.inc();
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(
                    opts.retry.delayMs(attempt + 1, /*cellKey=*/0)));
        }
    }
}

Frame
Client::expect(MsgType type, std::string_view body, MsgType want,
               bool idempotent)
{
    Frame response = roundTrip(type, body, idempotent);
    if (response.type != want) {
        throw SvcError(ErrorCode::Protocol,
                       util::strprintf(
                           "expected record type %u, server sent %u",
                           static_cast<unsigned>(want),
                           static_cast<unsigned>(response.type)));
    }
    return response;
}

std::pair<std::uint64_t, std::uint64_t>
Client::submit(const SweepRequest &request)
{
    const Frame response = expect(MsgType::SubmitSweep, request.encode(),
                                  MsgType::SubmitOk,
                                  /*idempotent=*/false);
    return decodeSubmitOk(response.body);
}

JobStatusInfo
Client::poll(std::uint64_t id)
{
    const Frame response =
        expect(MsgType::Poll, encodeId(id), MsgType::JobStatus);
    return JobStatusInfo::decode(response.body);
}

std::string
Client::fetchResults(std::uint64_t id)
{
    Frame response =
        expect(MsgType::FetchResults, encodeId(id), MsgType::Results);
    return std::move(response.body);
}

JobStatusInfo
Client::cancel(std::uint64_t id)
{
    const Frame response =
        expect(MsgType::Cancel, encodeId(id), MsgType::CancelOk);
    return JobStatusInfo::decode(response.body);
}

StatsSnapshot
Client::stats()
{
    const Frame response =
        expect(MsgType::Stats, std::string_view{}, MsgType::StatsReport);
    return StatsSnapshot::decode(response.body);
}

std::vector<WorkerSnapshot>
Client::workers()
{
    const Frame response = expect(MsgType::Workers, std::string_view{},
                                  MsgType::WorkerReport);
    return WorkerSnapshot::decodeList(response.body);
}

JobStatusInfo
Client::waitUntilDone(std::uint64_t id, int pollMs,
                      const std::function<void(const JobStatusInfo &)>
                          &onStatus)
{
    for (;;) {
        const JobStatusInfo info = poll(id);
        if (onStatus)
            onStatus(info);
        if (info.terminal())
            return info;
        std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
    }
}

} // namespace fo4::svc
