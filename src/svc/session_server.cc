#include "svc/session_server.hh"

#include "svc/sweep.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

using util::ErrorCode;
using util::SvcError;

SessionServer::SessionServer(std::uint16_t port, std::size_t maxQueue,
                             std::size_t tenantQuota)
    : table(maxQueue, tenantQuota), listener(port)
{
}

SessionServer::~SessionServer()
{
    // The derived destructor has already stopped and joined (it must:
    // session threads call its virtuals); this is the safety net for
    // the base-only paths.
    stop();
    join();
}

void
SessionServer::stop()
{
    if (stopping.exchange(true))
        return;
    listener.close();
    table.shutdown();
}

void
SessionServer::join()
{
    if (acceptThread.joinable())
        acceptThread.join();
    std::vector<std::thread> drained;
    {
        std::lock_guard<std::mutex> lock(sessionMutex);
        drained.swap(sessions);
    }
    for (auto &session : drained) {
        if (session.joinable())
            session.join();
    }
}

void
SessionServer::startAccepting()
{
    acceptThread = std::thread([this] { acceptLoop(); });
}

void
SessionServer::acceptLoop()
{
    auto &connections =
        util::MetricsRegistry::global().counter("svc.connections");
    while (!stopping.load()) {
        std::optional<util::TcpStream> stream;
        try {
            stream = listener.accept(kTickMs);
        } catch (const SvcError &) {
            // A listener error after close() is part of shutdown; any
            // other is transient — either way the loop just ticks on.
            continue;
        }
        if (!stream)
            continue;
        connections.inc();
        std::lock_guard<std::mutex> lock(sessionMutex);
        sessions.emplace_back(
            [this, s = std::move(*stream)]() mutable {
                sessionLoop(std::move(s));
            });
    }
}

void
SessionServer::sessionLoop(util::TcpStream stream)
{
    auto &protocolErrors =
        util::MetricsRegistry::global().counter("svc.protocol_errors");
    while (!stopping.load()) {
        try {
            if (!stream.waitReadable(kTickMs))
                continue;
            const std::optional<Frame> frame =
                readFrame(stream, kFrameTimeoutMs);
            if (!frame)
                return; // peer hung up between frames
            handleFrame(stream, *frame);
        } catch (const SvcError &e) {
            // A frame that cannot be trusted costs the session, never
            // the daemon: report the typed verdict while the transport
            // may still work, then hang up.
            if (e.code() == ErrorCode::Protocol)
                protocolErrors.inc();
            try {
                writeFrame(stream, MsgType::Error,
                           encodeError(e.code(), e.what()),
                           kFrameTimeoutMs);
            } catch (const SvcError &) {
                // the transport is gone too; nothing left to report
            }
            return;
        }
    }
}

bool
SessionServer::handleClientFrame(util::TcpStream &stream,
                                 const Frame &frame)
{
    switch (frame.type) {
      case MsgType::SubmitSweep: {
        std::uint64_t id = 0;
        std::uint64_t cells = 0;
        try {
            SweepRequest request = SweepRequest::decode(frame.body);
            // Validate eagerly: a nonsense request is refused here,
            // synchronously, not failed minutes later in the queue.
            const SweepPlan plan = planSweep(request);
            cells = plan.cells();
            id = table.submit(std::move(request), cells,
                              planFingerprint(plan));
        } catch (const util::SimError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw; // malformed body: the session-fatal path
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()), kFrameTimeoutMs);
            return true;
        }
        writeFrame(stream, MsgType::SubmitOk, encodeSubmitOk(id, cells),
                   kFrameTimeoutMs);
        return true;
      }
      case MsgType::Poll: {
        try {
            const JobStatusInfo info = table.status(decodeId(frame.body));
            writeFrame(stream, MsgType::JobStatus, info.encode(),
                       kFrameTimeoutMs);
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw; // malformed body: the session-fatal path
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()), kFrameTimeoutMs);
        }
        return true;
      }
      case MsgType::FetchResults: {
        try {
            writeFrame(stream, MsgType::Results,
                       table.fetchResults(decodeId(frame.body)),
                       kFrameTimeoutMs);
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw;
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()), kFrameTimeoutMs);
        }
        return true;
      }
      case MsgType::Cancel: {
        try {
            const JobStatusInfo info =
                table.cancelJob(decodeId(frame.body));
            writeFrame(stream, MsgType::CancelOk, info.encode(),
                       kFrameTimeoutMs);
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw;
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()), kFrameTimeoutMs);
        }
        return true;
      }
      case MsgType::Stats:
        writeFrame(stream, MsgType::StatsReport, buildStats().encode(),
                   kFrameTimeoutMs);
        return true;
      default:
        return false;
    }
}

} // namespace fo4::svc
