/**
 * @file
 * Persistent result store: the service-level cache over util::BlobStore.
 *
 * Two entry kinds, both keyed by study::gridFingerprint — the identity
 * over every result-influencing input (DESIGN.md §7), so a key can only
 * ever name one byte sequence:
 *
 *  - `sweep-<fingerprint>`: the full rendered result payload of a sweep
 *    (exactly the bytes a FetchResult frame carries), served by fo4d
 *    and fo4coord so a repeat submission costs zero compute;
 *  - `cell-<fingerprint>-<point>-<job>`: one encodeCellRecord payload,
 *    read by fleet workers so a warm cache skips execution of
 *    individual cells.
 *
 * The degradation ladder is inherited from BlobStore (every fault is a
 * miss) with one extra rung here: a blob that frames correctly but does
 * not decode as a cell record — or decodes to the wrong slot — is
 * quarantined and reported as a miss too.  Nothing in this layer
 * throws on the fetch/store paths.
 *
 * Tenancy: the tenant id is deliberately *not* part of any key.  The
 * fingerprint already pins the bytes, so tenants share hits — quotas
 * meter admission (svc::JobTable), not cached bytes.
 */

#ifndef FO4_SVC_STORE_HH
#define FO4_SVC_STORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "study/checkpoint.hh"
#include "util/blob_store.hh"

namespace fo4::svc
{

class ResultStore
{
  public:
    /**
     * Open a store rooted at `dir` with a `maxBytes` size cap (0 =
     * unlimited).  Counters land under `svc.cache.*`.  Throws
     * ConfigError only if `dir` cannot be created.
     */
    ResultStore(std::string dir, std::uint64_t maxBytes);

    /** Full rendered sweep payload for `fingerprint`, or miss. */
    std::optional<std::string> fetchSweep(std::uint64_t fingerprint);

    /** Publish a sweep's rendered payload (best effort, never throws). */
    void storeSweep(std::uint64_t fingerprint, std::string_view payload);

    /**
     * One cached cell, decoded and slot-checked, or miss.  A blob that
     * fails to decode — or claims a different (point, job) than its key
     * — is quarantined.
     */
    std::optional<study::CellRecord> fetchCell(std::uint64_t fingerprint,
                                               std::size_t point,
                                               std::size_t job);

    /** Publish one cell record (best effort, never throws). */
    void storeCell(std::uint64_t fingerprint,
                   const study::CellRecord &cell);

    /** Underlying blob store (stats, size scans, chaos hooks). */
    util::BlobStore &blobs() { return store; }
    const util::BlobStore &blobs() const { return store; }

    static std::string sweepKey(std::uint64_t fingerprint);
    static std::string cellKey(std::uint64_t fingerprint,
                               std::size_t point, std::size_t job);

  private:
    util::BlobStore store;
};

} // namespace fo4::svc

#endif // FO4_SVC_STORE_HH
