/**
 * @file
 * The fleet coordinator: a SessionServer that shards each sweep's grid
 * cells across registered fo4d workers, survives their deaths, and
 * still answers the same client protocol as a single daemon — fo4ctl
 * cannot tell a coordinator from a fo4d.
 *
 * Work moves by *pull*: workers dial in, register (WorkerHello), then
 * loop LeaseRequest -> run cell -> CellDone.  The coordinator never
 * initiates a connection, so worker NAT/death/restart needs no
 * coordinator-side bookkeeping beyond the failure detector.
 *
 * Robustness story (DESIGN.md §13):
 *
 *  - every socket operation carries a deadline (util/net timeouts), so
 *    a black-holed peer costs a typed error, never a wedged thread;
 *  - workers heartbeat; the failure detector degrades silent workers
 *    Live -> Suspect -> Dead and reclaims a dead worker's leases for
 *    re-dispatch;
 *  - leases themselves expire (leaseTimeoutMs), catching a *hung* cell
 *    on a worker that still heartbeats;
 *  - duplicate completions (a revoked lease racing its re-dispatch)
 *    are resolved first-wins by cell id — deterministic over bytes,
 *    because cells are pure (the §13 identity argument);
 *  - merged cells are journaled (util::Journal, the checkpoint format
 *    keyed by gridFingerprint), so a coordinator restart resumes a
 *    sweep instead of recomputing it — and the journal is the same one
 *    a local run would write;
 *  - when the last worker dies (or none ever registers within the
 *    grace window), the coordinator finishes the remaining cells
 *    *locally* through the same CheckpointedRunner, seeded with every
 *    worker-computed cell — a fleet of zero healthy workers still
 *    completes every sweep, byte-identical.
 */

#ifndef FO4_SVC_COORDINATOR_HH
#define FO4_SVC_COORDINATOR_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "study/checkpoint.hh"
#include "svc/lease.hh"
#include "svc/session_server.hh"
#include "svc/store.hh"
#include "svc/sweep.hh"
#include "util/journal.hh"

namespace fo4::svc
{

/** Knobs of the coordinator. */
struct CoordinatorOptions
{
    /** Listen port; 0 picks an ephemeral port (see port()). */
    std::uint16_t port = 0;
    /** Admission bound: queued (not yet running) jobs. */
    std::size_t maxQueue = 8;
    /** Directory for per-sweep journals keyed by grid fingerprint;
     *  empty disables durability (and restart-resume). */
    std::string checkpointDir;
    /** Directory for the persistent result store; empty disables
     *  caching (see svc/store.hh for the degradation contract). */
    std::string cacheDir;
    /** Result-store size cap in bytes (0 = unlimited). */
    std::uint64_t cacheMaxBytes = 0;
    /** Max queued sweeps per tenant (0 = unlimited). */
    std::size_t tenantQuota = 0;

    /** Failure-detector timing (heartbeat cadence told to workers,
     *  suspect and dead thresholds). */
    WorkerTable::Timing detector;
    /** How long a granted cell may run before its lease expires and
     *  the cell is re-dispatched. */
    std::uint64_t leaseTimeoutMs = 60000;
    /** Fabric bookkeeping cadence: failure detection, lease expiry and
     *  completion checks run every tick. */
    int tickMs = 50;

    /** Finish remaining cells locally when no live worker remains. */
    bool localFallback = true;
    /** With *zero workers ever registered*, how long a sweep waits for
     *  a first registration before local fallback.  Once a worker has
     *  registered, the last death triggers fallback immediately. */
    std::uint64_t fallbackGraceMs = 5000;
    /** Threads for local-fallback execution; 1 = serial, <= 0 = all. */
    int localThreads = 1;
    /** Retry policy of local-fallback execution (workers retry their
     *  own cells; the network layer retries in svc::Worker/Client). */
    study::RetryPolicy retry;
};

/** The coordinator daemon.  Construction binds and starts serving. */
class Coordinator : public SessionServer
{
  public:
    explicit Coordinator(CoordinatorOptions options);
    ~Coordinator() override;

    /** Drain: stop accepting, cancel queued and running sweeps. */
    void stop() override;

    /** Wait for every thread; call after stop(). */
    void join();

  private:
    /** Everything the fabric knows about the sweep being executed.
     *  Guarded by fabricMutex. */
    struct ActiveSweep
    {
        std::shared_ptr<JobRecord> job;
        SweepPlan plan;
        std::uint64_t fingerprint = 0;
        /** The request as shipped inside every CellLease. */
        std::string requestBody;
        CellScheduler scheduler;
        /** Merged results keyed by cell index (point * jobs + job). */
        std::map<std::size_t, study::CellRecord> cells;
        std::optional<util::JournalWriter> writer;
        std::string journalPath;
        /** Local takeover in progress: no more grants or merges. */
        bool fallback = false;
        FabricTime startedAt;

        ActiveSweep(std::shared_ptr<JobRecord> jobIn, SweepPlan planIn,
                    std::uint64_t fp, FabricTime now)
            : job(std::move(jobIn)), plan(std::move(planIn)),
              fingerprint(fp), requestBody(job->request.encode()),
              scheduler(plan.points.size(), plan.jobs.size()),
              startedAt(now)
        {
        }
    };

    void dispatchLoop();
    void runOneSweep(const std::shared_ptr<JobRecord> &job);
    /** Recover a prior journal into `sweep`; throws JournalError. */
    void replayJournal(ActiveSweep &sweep);
    /** Assemble final bytes from merged cells (plus local execution of
     *  whatever remains, when `executeRemainder`).  Called without the
     *  fabric lock; `sweep.fallback` is already set.  `anyFailed`
     *  reports whether any cell carries a per-row failure (such a
     *  result must not enter the persistent store). */
    std::string assembleResults(ActiveSweep &sweep, bool executeRemainder,
                                bool *anyFailed);

    void handleFrame(util::TcpStream &stream, const Frame &frame) override;
    StatsSnapshot buildStats() const override;

    void handleWorkerHello(util::TcpStream &stream, const Frame &frame);
    void handleLeaseRequest(util::TcpStream &stream, const Frame &frame);
    void handleCellDone(util::TcpStream &stream, const Frame &frame);
    void handleHeartbeat(util::TcpStream &stream, const Frame &frame);
    void handleWorkers(util::TcpStream &stream);

    CoordinatorOptions opts;
    /** Persistent result cache; null when cacheDir is empty. */
    std::unique_ptr<ResultStore> store;
    std::thread dispatchThread;

    mutable std::mutex fabricMutex;
    std::condition_variable fabricCv;
    WorkerTable fleet;                   ///< guarded by fabricMutex
    std::unique_ptr<ActiveSweep> active; ///< guarded by fabricMutex
};

} // namespace fo4::svc

#endif // FO4_SVC_COORDINATOR_HH
