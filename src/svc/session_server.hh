/**
 * @file
 * Shared scaffolding of every daemon in the sweep service: a TCP
 * listener, one session thread per connection, a stop/join lifecycle,
 * and the client-facing record handlers (submit, poll, fetch, cancel,
 * stats) over a JobTable.
 *
 * Both the single-machine daemon (svc::Server) and the fleet
 * coordinator (svc::Coordinator) are SessionServers: a coordinator
 * speaks the *same* client protocol as a daemon — fo4ctl cannot tell
 * them apart — and adds the fleet records on top.  The derived class
 * supplies handleFrame(); frames the shared handler does not recognise
 * fall through to it.
 *
 * Fault containment (inherited by every derived daemon): a malformed
 * or corrupt frame costs its *session* — the peer gets a typed Error
 * frame while the transport still works, then the connection closes —
 * never the process.
 *
 * Construction order contract: the base constructor binds the listener
 * but does NOT start accepting; the derived constructor must call
 * startAccepting() as its last statement, after every member the
 * session threads may touch is initialised (virtual dispatch from a
 * thread racing a half-built object is the bug this avoids).
 */

#ifndef FO4_SVC_SESSION_SERVER_HH
#define FO4_SVC_SESSION_SERVER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/queue.hh"
#include "util/net.hh"

namespace fo4::svc
{

/** Base of Server and Coordinator; see the file comment. */
class SessionServer
{
  public:
    virtual ~SessionServer();

    SessionServer(const SessionServer &) = delete;
    SessionServer &operator=(const SessionServer &) = delete;

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return listener.port(); }

    /** Stop accepting and wake every loop.  Idempotent.  Derived
     *  classes extend this to drain their own threads. */
    virtual void stop();

    /** Wait for the accept and session threads; call after stop().
     *  Derived classes join their own threads on top. */
    void join();

  protected:
    /** Binds (but does not serve) 127.0.0.1:port; 0 = ephemeral.
     *  `tenantQuota` bounds queued sweeps per tenant (0 = unlimited). */
    SessionServer(std::uint16_t port, std::size_t maxQueue,
                  std::size_t tenantQuota = 0);

    /** Launch the accept loop.  MUST be the last statement of the
     *  derived constructor. */
    void startAccepting();

    bool stopRequested() const { return stopping.load(); }

    /** How often blocked loops wake to check the stop flag, ms. */
    static constexpr int kTickMs = 100;

    /** Per-read/write timeout once a frame is in flight, ms — the
     *  per-RPC deadline that keeps a black-holed peer from wedging a
     *  session thread. */
    static constexpr int kFrameTimeoutMs = 10000;

    /**
     * Serve one request frame.  Implementations should try
     * handleClientFrame() first and treat an unhandled frame as a
     * protocol violation (throw SvcError(Protocol) — session-fatal).
     */
    virtual void handleFrame(util::TcpStream &stream,
                             const Frame &frame) = 0;

    /**
     * The client-protocol records every daemon answers: SubmitSweep
     * (validated eagerly via planSweep), Poll, FetchResults, Cancel,
     * Stats.  Returns false when `frame` is none of them.  Expected
     * per-request failures (NotFound, NotReady, Overloaded, a refused
     * request) are answered with an Error frame; Protocol errors
     * propagate — they are session-fatal by the trust model.
     */
    bool handleClientFrame(util::TcpStream &stream, const Frame &frame);

    /** The Stats record's payload; derived classes add their gauges. */
    virtual StatsSnapshot buildStats() const = 0;

    /** The job table every daemon serves clients from. */
    JobTable table;

  private:
    void acceptLoop();
    void sessionLoop(util::TcpStream stream);

    util::TcpListener listener;
    std::atomic<bool> stopping{false};
    std::thread acceptThread;
    std::mutex sessionMutex;
    std::vector<std::thread> sessions;
};

} // namespace fo4::svc

#endif // FO4_SVC_SESSION_SERVER_HH
