/**
 * @file
 * The daemon's job table: a bounded FIFO of submitted sweeps plus the
 * lifecycle state of every job the process has seen.
 *
 * Admission control: the queue is bounded (ServerOptions::maxQueue).  A
 * submit that would exceed the bound is refused *synchronously* with
 * SvcError(ErrorCode::Overloaded) — backpressure is a typed error the
 * client sees immediately, never a silently growing queue that turns
 * into an OOM kill an hour later.
 *
 * Cancellation semantics (the contract DESIGN.md §10 states):
 *
 *  - a *queued* job is removed from the queue and marked Cancelled —
 *    it never starts;
 *  - a *running* job gets its CancelToken flipped; the sweep drains
 *    cooperatively (journal flushed, resumable) and the dispatcher
 *    marks it Cancelled when CancelledError surfaces;
 *  - a *terminal* job is left alone — cancel is idempotent and always
 *    answers with the job's current status.
 *
 * Threading: one mutex guards the table and queue; per-job progress
 * (cellsStarted) is a relaxed atomic bumped from worker threads via the
 * runner's onAttempt hook, read without the lock.
 */

#ifndef FO4_SVC_QUEUE_HH
#define FO4_SVC_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "svc/protocol.hh"
#include "util/cancel.hh"

namespace fo4::svc
{

/** One submitted sweep's full lifecycle state. */
struct JobRecord
{
    std::uint64_t id = 0;
    SweepRequest request;
    JobState state = JobState::Queued;
    std::uint64_t cellsTotal = 0;
    /** gridFingerprint of the planned sweep (0 if never planned) — the
     *  key for in-memory dedup and the persistent result store. */
    std::uint64_t fingerprint = 0;
    /** Cells whose first attempt has started this run (worker threads
     *  bump this through the onAttempt hook; read lock-free). */
    std::atomic<std::uint64_t> cellsStarted{0};
    /** Cells whose result is in hand — the coordinator bumps this as
     *  worker completions merge; markDone pins it to cellsTotal. */
    std::atomic<std::uint64_t> cellsDone{0};
    /** Canonical result bytes once state == Done. */
    std::string results;
    /** Failure verdict once state == Failed. */
    util::ErrorCode errorCode = util::ErrorCode::Ok;
    std::string errorMessage;
    /** Per-job cancellation source, shared with the running sweep. */
    util::CancelToken cancel;
};

/**
 * Thread-safe table of jobs keyed by id, with a bounded submission
 * queue feeding the dispatcher.
 */
class JobTable
{
  public:
    /**
     * `tenantQuota` bounds how many sweeps one tenant may have *queued*
     * at once (0 = unlimited); the overall `maxQueue` bound still
     * applies on top.  Quota exhaustion is the same typed Overloaded
     * refusal as a full queue, with a distinct detail naming the tenant
     * — so a greedy tenant backs off while others keep submitting.
     */
    explicit JobTable(std::size_t maxQueue, std::size_t tenantQuota = 0);

    /**
     * Admit a validated request.  Returns the new job id; throws
     * SvcError(Overloaded) when the queue is full or the submitting
     * tenant's quota is exhausted (the record is not created — a
     * rejected submit leaves no trace but counters:
     * svc.shed.{queue_full,tenant_quota} and
     * svc.tenant.<tenant>.{submitted,rejected}).
     */
    std::uint64_t submit(SweepRequest request, std::uint64_t cellsTotal,
                         std::uint64_t fingerprint = 0);

    /**
     * The result bytes of an already-Done job with this fingerprint, if
     * any — the in-memory single-flight dedup the dispatcher consults
     * before touching the persistent store.  Fingerprint 0 never
     * matches.
     */
    std::optional<std::string>
    reuseDoneResult(std::uint64_t fingerprint) const;

    /**
     * Dequeue the oldest queued job, waiting up to `timeoutMs` for one
     * to arrive.  Returns nullopt on timeout or shutdown — the
     * dispatcher's cancel-poll tick.  The job is marked Running.
     */
    std::shared_ptr<JobRecord> takeNext(int timeoutMs);

    /** Record a terminal verdict (dispatcher only). */
    void markDone(std::uint64_t id, std::string results);
    void markFailed(std::uint64_t id, util::ErrorCode code,
                    std::string message);
    void markCancelled(std::uint64_t id);

    /**
     * Cancel a job (see file comment for semantics).  Returns the
     * post-cancel status; throws SvcError(NotFound) for unknown ids.
     */
    JobStatusInfo cancelJob(std::uint64_t id);

    /** Status snapshot; throws SvcError(NotFound) for unknown ids. */
    JobStatusInfo status(std::uint64_t id) const;

    /**
     * The result bytes of a Done job; throws SvcError(NotFound) for
     * unknown ids, SvcError(NotReady) while Queued/Running, and the
     * job's own failure (or Cancelled) as SvcError once terminal.
     */
    std::string fetchResults(std::uint64_t id) const;

    /** Mark every still-queued job Cancelled (shutdown drain) and wake
     *  the dispatcher; takeNext returns nullopt from now on. */
    void shutdown();

    std::size_t queueDepth() const;
    std::size_t maxQueue() const { return bound; }
    std::size_t tenantQuota() const { return quota; }

    /** Lifetime totals for the Stats record. */
    std::uint64_t submitted() const { return nSubmitted.load(); }
    std::uint64_t rejected() const { return nRejected.load(); }
    std::uint64_t completed() const { return nCompleted.load(); }
    std::uint64_t failed() const { return nFailed.load(); }
    std::uint64_t cancelled() const { return nCancelled.load(); }

    /** The running job, if any (for Stats progress gauges). */
    std::shared_ptr<JobRecord> runningJob() const;

  private:
    JobStatusInfo statusLocked(const JobRecord &record,
                               std::uint64_t queuePosition) const;
    std::uint64_t queuePositionLocked(std::uint64_t id) const;
    /** A queued job left the queue: release its tenant quota slot. */
    void dropQueuedTenantLocked(const JobRecord &record);

    const std::size_t bound;
    const std::size_t quota;
    mutable std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::uint64_t nextId = 1;
    std::map<std::uint64_t, std::shared_ptr<JobRecord>> jobs;
    std::deque<std::uint64_t> queue;
    std::shared_ptr<JobRecord> running;
    /** Queued (not running) jobs per tenant, for quota admission. */
    std::map<std::string, std::size_t> queuedByTenant;

    std::atomic<std::uint64_t> nSubmitted{0};
    std::atomic<std::uint64_t> nRejected{0};
    std::atomic<std::uint64_t> nCompleted{0};
    std::atomic<std::uint64_t> nFailed{0};
    std::atomic<std::uint64_t> nCancelled{0};
};

} // namespace fo4::svc

#endif // FO4_SVC_QUEUE_HH
