#include "svc/server.hh"

#include <chrono>
#include <cmath>

#include "svc/sweep.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

namespace
{

using util::ErrorCode;
using util::SvcError;

/** How often blocked loops wake to check the stop flag, ms. */
constexpr int kTickMs = 100;

/** Per-read timeout once a frame has begun arriving, ms. */
constexpr int kFrameTimeoutMs = 10000;

/**
 * Sweep wall times span four orders of magnitude (a 2-cell smoke sweep
 * to an hour-long grid), so the latency histogram is log2-bucketed:
 * bucket i holds sweeps with wall time in [2^i - 1, 2^(i+1) - 1) ms.
 */
constexpr std::size_t kLatencyBuckets = 24;

std::uint64_t
latencyBucketOf(double wallMs)
{
    if (wallMs < 1.0)
        return 0;
    return static_cast<std::uint64_t>(std::log2(wallMs + 1.0));
}

util::MetricHistogram &
latencyHistogram()
{
    return util::MetricsRegistry::global().histogram("svc.sweep_wall_ms",
                                                     kLatencyBuckets);
}

} // namespace

Server::Server(ServerOptions options)
    : opts(std::move(options)), listener(opts.port),
      table(opts.maxQueue)
{
    acceptThread = std::thread([this] { acceptLoop(); });
    dispatchThread = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
    join();
}

void
Server::stop()
{
    if (stopping.exchange(true))
        return;
    listener.close();
    table.shutdown();
}

void
Server::join()
{
    if (acceptThread.joinable())
        acceptThread.join();
    if (dispatchThread.joinable())
        dispatchThread.join();
    std::vector<std::thread> drained;
    {
        std::lock_guard<std::mutex> lock(sessionMutex);
        drained.swap(sessions);
    }
    for (auto &session : drained) {
        if (session.joinable())
            session.join();
    }
}

void
Server::acceptLoop()
{
    auto &connections =
        util::MetricsRegistry::global().counter("svc.connections");
    while (!stopping.load()) {
        std::optional<util::TcpStream> stream;
        try {
            stream = listener.accept(kTickMs);
        } catch (const SvcError &) {
            // A listener error after close() is part of shutdown; any
            // other is transient — either way the loop just ticks on.
            continue;
        }
        if (!stream)
            continue;
        connections.inc();
        std::lock_guard<std::mutex> lock(sessionMutex);
        sessions.emplace_back(
            [this, s = std::move(*stream)]() mutable {
                sessionLoop(std::move(s));
            });
    }
}

void
Server::sessionLoop(util::TcpStream stream)
{
    auto &protocolErrors =
        util::MetricsRegistry::global().counter("svc.protocol_errors");
    while (!stopping.load()) {
        try {
            if (!stream.waitReadable(kTickMs))
                continue;
            const std::optional<Frame> frame =
                readFrame(stream, kFrameTimeoutMs);
            if (!frame)
                return; // peer hung up between frames
            handleFrame(stream, *frame);
        } catch (const SvcError &e) {
            // A frame that cannot be trusted costs the session, never
            // the daemon: report the typed verdict while the transport
            // may still work, then hang up.
            if (e.code() == ErrorCode::Protocol)
                protocolErrors.inc();
            try {
                writeFrame(stream, MsgType::Error,
                           encodeError(e.code(), e.what()));
            } catch (const SvcError &) {
                // the transport is gone too; nothing left to report
            }
            return;
        }
    }
}

void
Server::handleFrame(util::TcpStream &stream, const Frame &frame)
{
    switch (frame.type) {
      case MsgType::SubmitSweep: {
        std::uint64_t id = 0;
        std::uint64_t cells = 0;
        try {
            SweepRequest request = SweepRequest::decode(frame.body);
            // Validate eagerly: a nonsense request is refused here,
            // synchronously, not failed minutes later in the queue.
            const SweepPlan plan = planSweep(request);
            cells = plan.cells();
            id = table.submit(std::move(request), cells);
        } catch (const util::SimError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw; // malformed body: the session-fatal path
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()));
            return;
        }
        writeFrame(stream, MsgType::SubmitOk, encodeSubmitOk(id, cells));
        return;
      }
      case MsgType::Poll: {
        try {
            const JobStatusInfo info = table.status(decodeId(frame.body));
            writeFrame(stream, MsgType::JobStatus, info.encode());
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw; // malformed body: the session-fatal path
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()));
        }
        return;
      }
      case MsgType::FetchResults: {
        try {
            writeFrame(stream, MsgType::Results,
                       table.fetchResults(decodeId(frame.body)));
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw;
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()));
        }
        return;
      }
      case MsgType::Cancel: {
        try {
            const JobStatusInfo info =
                table.cancelJob(decodeId(frame.body));
            writeFrame(stream, MsgType::CancelOk, info.encode());
        } catch (const SvcError &e) {
            if (e.code() == ErrorCode::Protocol)
                throw;
            writeFrame(stream, MsgType::Error,
                       encodeError(e.code(), e.what()));
        }
        return;
      }
      case MsgType::Stats:
        writeFrame(stream, MsgType::StatsReport, buildStats().encode());
        return;
      default:
        // A response record arriving at the server is a peer speaking
        // the protocol backwards; session-fatal like any other
        // protocol violation.
        throw SvcError(ErrorCode::Protocol,
                       util::strprintf(
                           "record type %u is not a request",
                           static_cast<unsigned>(frame.type)));
    }
}

void
Server::dispatchLoop()
{
    auto &histogram = latencyHistogram();
    while (!stopping.load()) {
        const std::shared_ptr<JobRecord> job = table.takeNext(kTickMs);
        if (!job)
            continue;

        const auto started = std::chrono::steady_clock::now();
        try {
            // Re-derive the plan from the request: planSweep is a pure
            // function, and it already passed at submit time.
            const SweepPlan plan = planSweep(job->request);
            std::string journalPath;
            if (!opts.checkpointDir.empty()) {
                journalPath = util::strprintf(
                    "%s/sweep-%016llx.journal",
                    opts.checkpointDir.c_str(),
                    static_cast<unsigned long long>(
                        planFingerprint(plan)));
            }
            std::string results = runSweep(
                plan, opts.threads, journalPath, &job->cancel,
                [job](std::size_t, std::size_t, int attempt) {
                    if (attempt == 1)
                        job->cellsStarted.fetch_add(
                            1, std::memory_order_relaxed);
                });
            table.markDone(job->id, std::move(results));
        } catch (const util::CancelledError &) {
            // Drained cooperatively with the journal flushed: the job
            // is cancelled, not failed, and resumable on resubmit.
            table.markCancelled(job->id);
        } catch (const util::SimError &e) {
            table.markFailed(job->id, e.code(), e.what());
        } catch (const std::exception &e) {
            table.markFailed(job->id, ErrorCode::Internal, e.what());
        }
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        histogram.sample(latencyBucketOf(wallMs));
    }
}

StatsSnapshot
Server::buildStats() const
{
    StatsSnapshot s;
    s.queueDepth = table.queueDepth();
    s.maxQueue = table.maxQueue();
    if (const std::shared_ptr<JobRecord> job = table.runningJob()) {
        s.runningJobs = 1;
        s.runningCellsStarted = job->cellsStarted.load();
        s.runningCellsTotal = job->cellsTotal;
    }
    s.submitted = table.submitted();
    s.rejected = table.rejected();
    s.completed = table.completed();
    s.failed = table.failed();
    s.cancelled = table.cancelled();

    const util::MetricHistogram &histogram = latencyHistogram();
    for (std::size_t i = 0; i < histogram.bucketCount(); ++i)
        s.latencyBuckets.push_back(histogram.bucket(i));
    s.latencySamples = histogram.samples();
    s.latencyMeanMs = histogram.mean();

    s.counters = util::MetricsRegistry::global().snapshotCounters();
    return s;
}

} // namespace fo4::svc
