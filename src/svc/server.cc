#include "svc/server.hh"

#include <chrono>
#include <cmath>

#include "svc/sweep.hh"
#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

namespace
{

using util::ErrorCode;
using util::SvcError;

/**
 * Sweep wall times span four orders of magnitude (a 2-cell smoke sweep
 * to an hour-long grid), so the latency histogram is log2-bucketed:
 * bucket i holds sweeps with wall time in [2^i - 1, 2^(i+1) - 1) ms.
 */
constexpr std::size_t kLatencyBuckets = 24;

std::uint64_t
latencyBucketOf(double wallMs)
{
    if (wallMs < 1.0)
        return 0;
    return static_cast<std::uint64_t>(std::log2(wallMs + 1.0));
}

util::MetricHistogram &
latencyHistogram()
{
    return util::MetricsRegistry::global().histogram("svc.sweep_wall_ms",
                                                     kLatencyBuckets);
}

} // namespace

Server::Server(ServerOptions options)
    : SessionServer(options.port, options.maxQueue, options.tenantQuota),
      opts(std::move(options))
{
    // A bad cache dir throws ConfigError here, at startup — a config
    // mistake is refused eagerly; only runtime faults degrade to misses.
    if (!opts.cacheDir.empty())
        store = std::make_unique<ResultStore>(opts.cacheDir,
                                              opts.cacheMaxBytes);
    dispatchThread = std::thread([this] { dispatchLoop(); });
    startAccepting();
}

Server::~Server()
{
    stop();
    join();
}

void
Server::stop()
{
    SessionServer::stop();
}

void
Server::join()
{
    SessionServer::join();
    if (dispatchThread.joinable())
        dispatchThread.join();
}

void
Server::handleFrame(util::TcpStream &stream, const Frame &frame)
{
    if (handleClientFrame(stream, frame))
        return;
    // A response record — or a fleet record this daemon does not serve
    // — arriving at the server is a peer speaking the protocol
    // backwards; session-fatal like any other protocol violation.
    throw SvcError(ErrorCode::Protocol,
                   util::strprintf("record type %u is not a request "
                                   "this daemon serves",
                                   static_cast<unsigned>(frame.type)));
}

void
Server::dispatchLoop()
{
    auto &histogram = latencyHistogram();
    while (!stopRequested()) {
        const std::shared_ptr<JobRecord> job = table.takeNext(kTickMs);
        if (!job)
            continue;

        const auto started = std::chrono::steady_clock::now();
        try {
            // Re-derive the plan from the request: planSweep is a pure
            // function, and it already passed at submit time.
            const SweepPlan plan = planSweep(job->request);
            const std::uint64_t fingerprint = planFingerprint(plan);

            // Single-flight dedup: the dispatcher is the only executor,
            // so an identical sweep already finished in this process can
            // be answered from its in-memory record — before the store,
            // which it seeded anyway.
            if (std::optional<std::string> prior =
                    table.reuseDoneResult(fingerprint)) {
                util::MetricsRegistry::global()
                    .counter("svc.cache.dedup")
                    .inc();
                table.markDone(job->id, std::move(*prior));
                continue;
            }
            // Persistent store: a verified hit is the same bytes the
            // sweep would compute (the fingerprint pins every input, the
            // CRC frame pins the bytes); any fault was already degraded
            // to nullopt inside the store.
            if (store) {
                if (std::optional<std::string> cached =
                        store->fetchSweep(fingerprint)) {
                    table.markDone(job->id, std::move(*cached));
                    continue;
                }
            }

            std::string journalPath;
            if (!opts.checkpointDir.empty()) {
                journalPath = util::strprintf(
                    "%s/sweep-%016llx.journal",
                    opts.checkpointDir.c_str(),
                    static_cast<unsigned long long>(fingerprint));
            }
            bool anyFailed = false;
            std::string results = runSweep(
                plan, opts.threads, journalPath, &job->cancel,
                [job](std::size_t, std::size_t, int attempt) {
                    if (attempt == 1)
                        job->cellsStarted.fetch_add(
                            1, std::memory_order_relaxed);
                },
                &anyFailed);
            // Only clean sweeps enter the cache: a row's transient
            // failure must not be replayed to later submissions.
            if (store && !anyFailed)
                store->storeSweep(fingerprint, results);
            table.markDone(job->id, std::move(results));
        } catch (const util::CancelledError &) {
            // Drained cooperatively with the journal flushed: the job
            // is cancelled, not failed, and resumable on resubmit.
            table.markCancelled(job->id);
        } catch (const util::SimError &e) {
            table.markFailed(job->id, e.code(), e.what());
        } catch (const std::exception &e) {
            table.markFailed(job->id, ErrorCode::Internal, e.what());
        }
        const double wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        histogram.sample(latencyBucketOf(wallMs));
    }
}

StatsSnapshot
Server::buildStats() const
{
    StatsSnapshot s;
    s.queueDepth = table.queueDepth();
    s.maxQueue = table.maxQueue();
    if (const std::shared_ptr<JobRecord> job = table.runningJob()) {
        s.runningJobs = 1;
        s.runningCellsStarted = job->cellsStarted.load();
        s.runningCellsTotal = job->cellsTotal;
    }
    s.submitted = table.submitted();
    s.rejected = table.rejected();
    s.completed = table.completed();
    s.failed = table.failed();
    s.cancelled = table.cancelled();
    if (store) {
        s.cacheBytes = store->blobs().sizeBytes();
        s.cacheEntries = store->blobs().entries();
    }

    const util::MetricHistogram &histogram = latencyHistogram();
    for (std::size_t i = 0; i < histogram.bucketCount(); ++i)
        s.latencyBuckets.push_back(histogram.bucket(i));
    s.latencySamples = histogram.samples();
    s.latencyMeanMs = histogram.mean();

    s.counters = util::MetricsRegistry::global().snapshotCounters();
    return s;
}

} // namespace fo4::svc
