#include "svc/sweep.hh"

#include "study/montecarlo.hh"
#include "study/scaling.hh"
#include "trace/spec2000.hh"
#include "util/logging.hh"

namespace fo4::svc
{

SweepPlan
planSweep(const SweepRequest &request)
{
    SweepPlan plan;
    plan.tUseful = request.tUseful;

    if (request.tUseful.empty())
        throw util::ConfigError("sweep request has an empty t_useful axis");
    if (request.jobs.empty())
        throw util::ConfigError("sweep request has no jobs");

    plan.spec.model = request.model == "inorder"
                          ? study::CoreModel::InOrder
                          : study::CoreModel::OutOfOrder;
    if (request.model != "ooo" && request.model != "inorder") {
        throw util::ConfigError(util::strprintf(
            "unknown core model '%s' (want 'ooo' or 'inorder')",
            request.model.c_str()));
    }
    plan.spec.predictor = request.predictor;
    plan.spec.instructions = request.instructions;
    plan.spec.warmup = request.warmup;
    plan.spec.prewarm = request.prewarm;
    plan.spec.cycleLimit = request.cycleLimit;

    const tech::OverheadModel overhead =
        tech::OverheadModel::uniform(request.overheadFo4);
    const study::ScalingOptions scaling; // paper Section 3 defaults
    for (const double t : request.tUseful) {
        study::GridPoint point;
        point.params = study::scaledCoreParams(t, scaling);
        point.clock = study::scaledClock(t, overhead);
        plan.points.push_back(std::move(point));
    }

    // Monte Carlo requests expand the planned grid sample-major: die s
    // of base point p lands at slot s*nBase+p (study::expandMonteCarloGrid).
    // Every sampled clock is derived here, from the request alone, so a
    // fleet worker plans bit-identically the grid the coordinator did —
    // same points, same fingerprint — and the whole fabric / checkpoint
    // machinery applies to sampled cells unchanged.
    if (request.mcSamples > 0) {
        study::VariationModel variation;
        variation.dist = study::mcDistFromName(request.mcDist);
        variation.sigmaLatch = request.mcSigmaLatch;
        variation.sigmaSkew = request.mcSigmaSkew;
        variation.sigmaJitter = request.mcSigmaJitter;
        variation.sigmaDie = request.mcSigmaDie;
        variation.seed = request.mcSeed;
        variation.samples = static_cast<int>(request.mcSamples);
        if (request.mcSamples > 100000) {
            throw util::ConfigError(util::strprintf(
                "mc_samples %llu is beyond the service bound of 100000",
                static_cast<unsigned long long>(request.mcSamples)));
        }
        plan.points = study::expandMonteCarloGrid(plan.points, variation);
        std::vector<double> expandedUseful;
        expandedUseful.reserve(plan.points.size());
        for (std::uint64_t s = 0; s < request.mcSamples; ++s) {
            for (const double t : request.tUseful)
                expandedUseful.push_back(t);
        }
        plan.tUseful = std::move(expandedUseful);
    }

    for (const auto &wire : request.jobs) {
        study::BenchJob job;
        if (wire.fromTrace) {
            job = study::BenchJob::fromTraceFile(wire.name, wire.cls,
                                                 wire.tracePath);
        } else {
            // Throws ConfigError on an unknown profile name — the
            // submit-time rejection the file comment promises.
            job = study::BenchJob::fromProfile(
                trace::spec2000Profile(wire.name));
        }
        if (wire.cycleLimit != 0)
            job.cycleLimit = wire.cycleLimit;
        plan.jobs.push_back(std::move(job));
    }

    // The runner would reject these too, but only once the request is
    // dequeued; validating every point here keeps rejection synchronous.
    for (const auto &point : plan.points)
        study::validateSuiteInputs(point.params, point.clock, plan.jobs,
                                   plan.spec);
    return plan;
}

std::uint64_t
planFingerprint(const SweepPlan &plan)
{
    return study::gridFingerprint(plan.points, plan.jobs, plan.spec);
}

std::string
runSweep(const SweepPlan &plan, int threads,
         const std::string &journalPath, const util::CancelToken *cancel,
         std::function<void(std::size_t, std::size_t, int)> onAttempt,
         bool *anyFailed)
{
    study::CheckpointOptions options;
    options.journalPath = journalPath;
    options.threads = threads;
    options.cancel = cancel;
    options.onAttempt = std::move(onAttempt);
    study::CheckpointedRunner runner(std::move(options));
    const std::vector<study::SuiteResult> suites =
        runner.runGrid(plan.points, plan.jobs, plan.spec);
    if (anyFailed) {
        *anyFailed = false;
        for (const auto &suite : suites) {
            for (const auto &bench : suite.benchmarks) {
                if (bench.failed())
                    *anyFailed = true;
            }
        }
    }
    return renderResults(plan, suites);
}

std::string
renderResults(const SweepPlan &plan,
              const std::vector<study::SuiteResult> &suites)
{
    FO4_ASSERT(suites.size() == plan.points.size(),
               "render: %zu suites for %zu points", suites.size(),
               plan.points.size());
    std::string out = "fo4-sweep-results v1\n";
    out += util::strprintf("points=%zu jobs=%zu\n", plan.points.size(),
                           plan.jobs.size());
    for (std::size_t i = 0; i < suites.size(); ++i) {
        const tech::ClockModel &clock = plan.points[i].clock;
        out += util::strprintf("point=%zu t_useful=%a period_fo4=%a "
                               "ghz=%a\n",
                               i, plan.tUseful[i], clock.periodFo4(),
                               clock.frequencyGhz());
        out += study::serializeSuite(suites[i]);
    }
    return out;
}

} // namespace fo4::svc
