/**
 * @file
 * The one code path from a wire SweepRequest to canonical result bytes.
 *
 * Identity guarantee: the daemon and `fo4ctl local` both call
 * planSweep + runSweep + renderResults here, so a sweep fetched over
 * the wire is byte-identical to the same sweep run locally — at any
 * thread count, including the position and typed error of failed rows
 * (the parallel engine's determinism contract, see study/parallel.hh,
 * extended across the socket).
 *
 * A plan is validated eagerly at submit time (planSweep throws
 * ConfigError on nonsense before the request enters the queue), which
 * is what lets admission control reject bad requests synchronously
 * instead of failing them minutes later.
 */

#ifndef FO4_SVC_SWEEP_HH
#define FO4_SVC_SWEEP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/checkpoint.hh"
#include "study/parallel.hh"
#include "svc/protocol.hh"
#include "util/cancel.hh"

namespace fo4::svc
{

/** A validated, fully-derived sweep: the grid CheckpointedRunner runs. */
struct SweepPlan
{
    std::vector<study::GridPoint> points;
    std::vector<study::BenchJob> jobs;
    study::RunSpec spec;
    /** The request's t_useful axis, in request order (for rendering). */
    std::vector<double> tUseful;

    /** Grid cells = points x jobs (the Poll progress denominator). */
    std::uint64_t cells() const { return points.size() * jobs.size(); }
};

/**
 * Derive and validate the plan for a request: scaled core parameters
 * and clock per t_useful (study::scaledCoreParams / scaledClock with
 * OverheadModel::uniform(request.overheadFo4)), one BenchJob per wire
 * job.  Throws ConfigError on invalid requests (unknown profile name,
 * bad model, empty axis, invalid derived parameters) — trace *paths*
 * are not probed here; a missing file fails its cell at run time, like
 * everywhere else.
 */
SweepPlan planSweep(const SweepRequest &request);

/**
 * Identity of a plan: study::gridFingerprint over its grid.  The
 * daemon keys each request's checkpoint journal by this, so
 * resubmitting a sweep after a daemon restart resumes it.
 */
std::uint64_t planFingerprint(const SweepPlan &plan);

/**
 * Execute a plan through study::CheckpointedRunner and return the
 * canonical result bytes.  `journalPath` empty disables durability;
 * `cancel` and `onAttempt` are passed through to CheckpointOptions.
 * Throws what the runner throws (CancelledError on cancellation,
 * after the journal is flushed — the run stays resumable).
 *
 * `anyFailed`, if given, reports whether any cell carries a per-row
 * typed failure.  Failed rows are part of the canonical bytes (the
 * identity contract covers them), but a result containing one must not
 * enter the persistent cache — a transient fault would otherwise be
 * replayed to every later submission of the same sweep.
 */
std::string runSweep(const SweepPlan &plan, int threads,
                     const std::string &journalPath,
                     const util::CancelToken *cancel,
                     std::function<void(std::size_t point, std::size_t job,
                                        int attempt)>
                         onAttempt,
                     bool *anyFailed = nullptr);

/**
 * Canonical rendering shared by the service and local execution: a
 * versioned header, then per sweep point one hexfloat point line and
 * the suite's study::serializeSuite bytes.  Everything downstream of
 * the simulator is this pure function of (plan, suites).
 */
std::string renderResults(const SweepPlan &plan,
                          const std::vector<study::SuiteResult> &suites);

} // namespace fo4::svc

#endif // FO4_SVC_SWEEP_HH
