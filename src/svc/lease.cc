#include "svc/lease.hh"

#include "util/logging.hh"

namespace fo4::svc
{

CellScheduler::CellScheduler(std::size_t points, std::size_t jobs)
    : nJobs(jobs), states(points * jobs, State::Pending)
{
    FO4_ASSERT(points >= 1 && jobs >= 1,
               "a sweep grid has at least one cell");
    for (std::size_t i = 0; i < states.size(); ++i)
        pending.push_back(i);
}

std::size_t
CellScheduler::index(std::size_t point, std::size_t job) const
{
    FO4_ASSERT(job < nJobs && point * nJobs + job < states.size(),
               "cell (%zu, %zu) outside the grid", point, job);
    return point * nJobs + job;
}

void
CellScheduler::markDone(std::size_t point, std::size_t job)
{
    const std::size_t i = index(point, job);
    if (states[i] == State::Done)
        return;
    FO4_ASSERT(states[i] == State::Pending,
               "markDone on a leased cell (%zu, %zu)", point, job);
    // Lazy removal: grant() skips non-pending queue entries, so the
    // stale index left in `pending` costs one pop, not an O(n) erase.
    states[i] = State::Done;
    ++nDone;
}

std::optional<CellScheduler::CellKey>
CellScheduler::grant(std::uint64_t workerId, FabricTime expiry)
{
    while (!pending.empty()) {
        const std::size_t i = pending.front();
        pending.pop_front();
        if (states[i] != State::Pending)
            continue; // lazily-removed (markDone raced the queue)
        states[i] = State::Leased;
        leases[i] = Lease{workerId, expiry};
        return CellKey{i / nJobs, i % nJobs};
    }
    return std::nullopt;
}

bool
CellScheduler::complete(std::size_t point, std::size_t job)
{
    const std::size_t i = index(point, job);
    if (states[i] == State::Done)
        return false; // duplicate: a lease raced its re-dispatch
    states[i] = State::Done;
    ++nDone;
    leases.erase(i); // no-op for a revoked (re-pended) lease
    return true;
}

std::size_t
CellScheduler::reclaimExpired(FabricTime now)
{
    std::size_t reclaimed = 0;
    for (auto it = leases.begin(); it != leases.end();) {
        if (it->second.expiry <= now) {
            states[it->first] = State::Pending;
            pending.push_back(it->first);
            it = leases.erase(it);
            ++reclaimed;
        } else {
            ++it;
        }
    }
    return reclaimed;
}

std::size_t
CellScheduler::reclaimWorker(std::uint64_t workerId)
{
    std::size_t reclaimed = 0;
    for (auto it = leases.begin(); it != leases.end();) {
        if (it->second.workerId == workerId) {
            states[it->first] = State::Pending;
            pending.push_back(it->first);
            it = leases.erase(it);
            ++reclaimed;
        } else {
            ++it;
        }
    }
    return reclaimed;
}

std::vector<CellScheduler::CellKey>
CellScheduler::drainPending()
{
    std::vector<CellKey> drained;
    while (!pending.empty()) {
        const std::size_t i = pending.front();
        pending.pop_front();
        if (states[i] != State::Pending)
            continue;
        drained.push_back(CellKey{i / nJobs, i % nJobs});
    }
    return drained;
}

std::uint64_t
CellScheduler::activeLeases(std::uint64_t workerId) const
{
    std::uint64_t n = 0;
    for (const auto &[i, lease] : leases) {
        if (lease.workerId == workerId)
            ++n;
    }
    return n;
}

WorkerTable::WorkerTable(Timing timing) : times(timing)
{
    FO4_ASSERT(times.suspectAfterMs <= times.deadAfterMs,
               "a worker must turn Suspect no later than Dead");
}

std::uint64_t
WorkerTable::registerWorker(std::string name, std::uint64_t threads,
                            FabricTime now)
{
    const std::uint64_t id = nextId++;
    Worker w;
    w.name = std::move(name);
    w.threads = threads;
    w.lastSeen = now;
    workers.emplace(id, std::move(w));
    return id;
}

bool
WorkerTable::touch(std::uint64_t id, FabricTime now)
{
    const auto it = workers.find(id);
    if (it == workers.end() || it->second.state == WorkerState::Dead)
        return false;
    it->second.lastSeen = now;
    it->second.state = WorkerState::Live; // a late suspect revives
    return true;
}

std::vector<std::uint64_t>
WorkerTable::newlyDead(FabricTime now)
{
    std::vector<std::uint64_t> died;
    for (auto &[id, w] : workers) {
        if (w.state == WorkerState::Dead)
            continue;
        const auto silence =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - w.lastSeen)
                .count();
        if (silence >= static_cast<long long>(times.deadAfterMs)) {
            w.state = WorkerState::Dead;
            died.push_back(id);
        } else if (silence >=
                   static_cast<long long>(times.suspectAfterMs)) {
            w.state = WorkerState::Suspect;
        }
    }
    return died;
}

std::size_t
WorkerTable::liveCount() const
{
    std::size_t n = 0;
    for (const auto &[id, w] : workers) {
        if (w.state != WorkerState::Dead)
            ++n;
    }
    return n;
}

void
WorkerTable::recordCompletion(std::uint64_t id)
{
    const auto it = workers.find(id);
    if (it != workers.end())
        ++it->second.cellsCompleted;
}

} // namespace fo4::svc
