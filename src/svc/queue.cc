#include "svc/queue.hh"

#include <algorithm>
#include <chrono>

#include "util/logging.hh"
#include "util/metrics.hh"

namespace fo4::svc
{

using util::ErrorCode;
using util::SvcError;

namespace
{

/** Tenant name used for accounting when the request carries none. */
const std::string &
tenantOf(const SweepRequest &request)
{
    static const std::string kDefault = "default";
    return request.tenant.empty() ? kDefault : request.tenant;
}

void
bumpTenantCounter(const std::string &tenant, const char *what)
{
    util::MetricsRegistry::global()
        .counter("svc.tenant." + tenant + "." + what)
        .inc();
}

} // namespace

JobTable::JobTable(std::size_t maxQueue, std::size_t tenantQuota)
    : bound(maxQueue), quota(tenantQuota)
{
    FO4_ASSERT(bound >= 1, "job queue bound must be >= 1");
}

std::uint64_t
JobTable::submit(SweepRequest request, std::uint64_t cellsTotal,
                 std::uint64_t fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex);
    const std::string tenant = tenantOf(request);
    if (stopping || queue.size() >= bound) {
        nRejected.fetch_add(1);
        util::MetricsRegistry::global()
            .counter("svc.shed.queue_full")
            .inc();
        bumpTenantCounter(tenant, "rejected");
        throw SvcError(
            ErrorCode::Overloaded,
            stopping
                ? "service is draining for shutdown"
                : util::strprintf("queue is full (%zu queued, bound %zu)"
                                  " — retry after a job finishes",
                                  queue.size(), bound));
    }
    if (quota != 0) {
        const auto it = queuedByTenant.find(tenant);
        const std::size_t queued =
            it == queuedByTenant.end() ? 0 : it->second;
        if (queued >= quota) {
            nRejected.fetch_add(1);
            util::MetricsRegistry::global()
                .counter("svc.shed.tenant_quota")
                .inc();
            bumpTenantCounter(tenant, "rejected");
            throw SvcError(
                ErrorCode::Overloaded,
                util::strprintf("tenant '%s' already has %zu queued "
                                "sweep%s (per-tenant quota %zu) — retry "
                                "after one starts",
                                tenant.c_str(), queued,
                                queued == 1 ? "" : "s", quota));
        }
    }
    auto record = std::make_shared<JobRecord>();
    record->id = nextId++;
    record->request = std::move(request);
    record->cellsTotal = cellsTotal;
    record->fingerprint = fingerprint;
    jobs.emplace(record->id, record);
    queue.push_back(record->id);
    ++queuedByTenant[tenant];
    nSubmitted.fetch_add(1);
    bumpTenantCounter(tenant, "submitted");
    cv.notify_one();
    return record->id;
}

std::optional<std::string>
JobTable::reuseDoneResult(std::uint64_t fingerprint) const
{
    if (fingerprint == 0)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex);
    // Newest first: later Done jobs are more likely still interesting.
    for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
        const JobRecord &record = *it->second;
        if (record.state == JobState::Done &&
            record.fingerprint == fingerprint)
            return record.results;
    }
    return std::nullopt;
}

std::shared_ptr<JobRecord>
JobTable::takeNext(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                [this] { return stopping || !queue.empty(); });
    if (stopping || queue.empty())
        return nullptr;
    const std::uint64_t id = queue.front();
    queue.pop_front();
    auto record = jobs.at(id);
    dropQueuedTenantLocked(*record);
    record->state = JobState::Running;
    running = record;
    return record;
}

void
JobTable::dropQueuedTenantLocked(const JobRecord &record)
{
    const auto it = queuedByTenant.find(tenantOf(record.request));
    if (it != queuedByTenant.end() && --it->second == 0)
        queuedByTenant.erase(it);
}

void
JobTable::markDone(std::uint64_t id, std::string results)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto record = jobs.at(id);
    record->state = JobState::Done;
    record->results = std::move(results);
    record->cellsDone.store(record->cellsTotal);
    if (running && running->id == id)
        running = nullptr;
    nCompleted.fetch_add(1);
}

void
JobTable::markFailed(std::uint64_t id, util::ErrorCode code,
                     std::string message)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto record = jobs.at(id);
    record->state = JobState::Failed;
    record->errorCode = code;
    record->errorMessage = std::move(message);
    if (running && running->id == id)
        running = nullptr;
    nFailed.fetch_add(1);
}

void
JobTable::markCancelled(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto record = jobs.at(id);
    record->state = JobState::Cancelled;
    if (running && running->id == id)
        running = nullptr;
    nCancelled.fetch_add(1);
}

JobStatusInfo
JobTable::cancelJob(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
        throw SvcError(ErrorCode::NotFound,
                       util::strprintf("no job with id %llu",
                                       static_cast<unsigned long long>(
                                           id)));
    }
    auto record = it->second;
    switch (record->state) {
      case JobState::Queued:
        // Never starts: drop it from the queue and settle it here.
        queue.erase(std::remove(queue.begin(), queue.end(), id),
                    queue.end());
        dropQueuedTenantLocked(*record);
        record->state = JobState::Cancelled;
        nCancelled.fetch_add(1);
        break;
      case JobState::Running:
        // Cooperative: the sweep observes the token at its next cell
        // boundary / watchdog check, flushes its journal and raises
        // CancelledError; the dispatcher then marks it Cancelled.
        record->cancel.requestCancel();
        break;
      case JobState::Done:
      case JobState::Failed:
      case JobState::Cancelled:
        break; // idempotent on terminal jobs
    }
    return statusLocked(*record, queuePositionLocked(id));
}

JobStatusInfo
JobTable::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
        throw SvcError(ErrorCode::NotFound,
                       util::strprintf("no job with id %llu",
                                       static_cast<unsigned long long>(
                                           id)));
    }
    return statusLocked(*it->second, queuePositionLocked(id));
}

std::string
JobTable::fetchResults(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
        throw SvcError(ErrorCode::NotFound,
                       util::strprintf("no job with id %llu",
                                       static_cast<unsigned long long>(
                                           id)));
    }
    const JobRecord &record = *it->second;
    switch (record.state) {
      case JobState::Done:
        return record.results;
      case JobState::Queued:
      case JobState::Running:
        throw SvcError(ErrorCode::NotReady,
                       util::strprintf(
                           "job %llu is still %s — poll until terminal",
                           static_cast<unsigned long long>(id),
                           jobStateName(record.state)));
      case JobState::Failed:
        throw SvcError(record.errorCode, record.errorMessage);
      case JobState::Cancelled:
        throw SvcError(ErrorCode::Cancelled,
                       util::strprintf("job %llu was cancelled",
                                       static_cast<unsigned long long>(
                                           id)));
    }
    throw SvcError(ErrorCode::Internal, "unreachable job state");
}

void
JobTable::shutdown()
{
    std::lock_guard<std::mutex> lock(mutex);
    stopping = true;
    for (const std::uint64_t id : queue) {
        jobs.at(id)->state = JobState::Cancelled;
        nCancelled.fetch_add(1);
    }
    queue.clear();
    queuedByTenant.clear();
    if (running)
        running->cancel.requestCancel();
    cv.notify_all();
}

std::size_t
JobTable::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return queue.size();
}

std::shared_ptr<JobRecord>
JobTable::runningJob() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return running;
}

JobStatusInfo
JobTable::statusLocked(const JobRecord &record,
                       std::uint64_t queuePosition) const
{
    JobStatusInfo info;
    info.id = record.id;
    info.state = record.state;
    info.queuePosition = queuePosition;
    info.cellsTotal = record.cellsTotal;
    info.cellsStarted = record.cellsStarted.load();
    info.cellsDone = record.cellsDone.load();
    info.errorCode = record.errorCode;
    info.errorMessage = record.errorMessage;
    return info;
}

std::uint64_t
JobTable::queuePositionLocked(std::uint64_t id) const
{
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i] == id)
            return i + 1;
    }
    return 0;
}

} // namespace fo4::svc
