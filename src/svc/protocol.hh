/**
 * @file
 * Wire protocol of the sweep service: versioned, CRC-framed,
 * length-prefixed typed records over TCP — the util::Journal framing
 * discipline, pointed at a socket instead of a file.
 *
 * Frame layout (little-endian, mirroring a journal record):
 *
 *     header (8 bytes): u32 payload length | u32 payload CRC32
 *     payload:          u16 protocol version | u16 record type | body
 *
 * Trust model: a frame is either verified or refused, never partially
 * believed.  The corruption matrix maps every kind of damage to a
 * typed SvcError(ErrorCode::Protocol):
 *
 *  - truncated frame: the peer closed inside a header or payload;
 *  - oversize length: a length word beyond kMaxPayloadBytes is refused
 *    *before* any allocation, so a corrupt (or hostile) length cannot
 *    balloon memory;
 *  - bad CRC: payload bytes do not hash to the header's CRC;
 *  - version mismatch: a frame from a protocol this build does not
 *    speak;
 *  - unknown record type: a well-formed frame nobody can interpret.
 *
 * Bodies are line-oriented `key=value` text with doubles rendered in
 * hexfloat (%a) — the serializeSuite discipline — so a request decodes
 * to exactly the doubles it was encoded from, which is what lets the
 * server reproduce a sweep byte-identically.  Free-text fields
 * (benchmark names, error messages, file paths) are escaped so
 * embedded newlines/tabs cannot break the line structure.
 *
 * The Results record's body is deliberately opaque bytes (the canonical
 * sweep rendering, see svc/sweep.hh): length-prefixed framing means it
 * needs no escaping and arrives bit-exact.
 */

#ifndef FO4_SVC_PROTOCOL_HH
#define FO4_SVC_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/profile.hh"
#include "util/net.hh"
#include "util/status.hh"

namespace fo4::svc
{

/** Protocol version spoken by this build; mismatches are refused.
 *  v2 added the fleet records (worker registration, heartbeats, cell
 *  leases) and the cells_done progress field of JobStatusInfo.
 *  v3 added the tenant field of SweepRequest (per-tenant admission
 *  quotas) and the cache gauges of StatsSnapshot — decoders are
 *  strict, so new fields force the bump.
 *  v4 added the Monte Carlo fields of SweepRequest (mc_samples,
 *  mc_dist, mc_sigma_* and mc_seed) — omitted from the wire when
 *  mcSamples == 0, so deterministic request bodies stay byte-stable. */
constexpr std::uint16_t kProtocolVersion = 4;

/** Frame header: u32 payload length + u32 payload CRC. */
constexpr std::size_t kFrameHeaderBytes = 8;

/** Hard payload bound, checked before allocating for a frame. */
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/** Typed wire records.  Requests < 64, responses >= 64. */
enum class MsgType : std::uint16_t
{
    // client -> server
    SubmitSweep = 1, ///< body: SweepRequest::encode()
    Poll = 2,        ///< body: "id=<n>"
    FetchResults = 3, ///< body: "id=<n>"
    Cancel = 4,      ///< body: "id=<n>"
    Stats = 5,       ///< body: empty
    Workers = 6,     ///< body: empty (coordinator-only fleet report)

    // worker -> coordinator (v2 fleet records)
    WorkerHello = 16,  ///< body: WorkerHelloInfo::encode()
    LeaseRequest = 17, ///< body: "worker_id=<n>"
    CellDone = 18,     ///< body: CellDoneInfo::encode()
    Heartbeat = 19,    ///< body: "worker_id=<n>"

    // server -> client
    SubmitOk = 64,   ///< body: "id=<n>\ncells_total=<n>"
    JobStatus = 65,  ///< body: JobStatusInfo::encode()
    Results = 66,    ///< body: canonical sweep rendering (opaque bytes)
    CancelOk = 67,   ///< body: JobStatusInfo::encode() (post-cancel)
    StatsReport = 68, ///< body: StatsSnapshot::encode()
    Error = 69,      ///< body: "code=<name>\nmessage=<escaped>"

    // coordinator -> worker / client (v2 fleet records)
    HelloOk = 80,      ///< body: HelloOkInfo::encode()
    CellLease = 81,    ///< body: CellLeaseInfo::encode()
    NoWork = 82,       ///< body: "retry_ms=<n>"
    DoneOk = 83,       ///< body: "accepted=<0|1>"
    HeartbeatOk = 84,  ///< body: "known=<0|1>"
    WorkerReport = 85, ///< body: WorkerSnapshot::encodeList()
};

/** Is this raw type word one this build interprets? */
bool msgTypeKnown(std::uint16_t raw);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::string body;
};

/** Encode a complete frame (header + payload) ready to write. */
std::string encodeFrame(MsgType type, std::string_view body);

/**
 * Parse and bound-check a frame header.  Throws SvcError(Protocol)
 * when the length word exceeds kMaxPayloadBytes or cannot hold the
 * version/type words.
 */
struct FrameHeader
{
    std::uint32_t payloadBytes = 0;
    std::uint32_t crc = 0;
};
FrameHeader decodeFrameHeader(const unsigned char (&header)[kFrameHeaderBytes]);

/**
 * Verify and decode a payload against its header: CRC, version, record
 * type.  Throws SvcError(Protocol) on any mismatch.
 */
Frame decodePayload(const FrameHeader &header, std::string_view payload);

/**
 * Read one frame from the stream.  Returns nullopt on orderly EOF
 * before the first header byte (the peer hung up between frames);
 * throws SvcError(Protocol) for every corruption-matrix case and
 * SvcError(NetIo) for transport trouble.  `timeoutMs` bounds each
 * poll-for-bytes once a frame has begun.
 */
std::optional<Frame> readFrame(util::TcpStream &stream, int timeoutMs);

/** Encode and write one frame.  `timeoutMs` bounds the socket write
 *  (the per-RPC send deadline); <= 0 waits forever. */
void writeFrame(util::TcpStream &stream, MsgType type,
                std::string_view body, int timeoutMs = -1);

// ---------------------------------------------------------------------
// Body text helpers
// ---------------------------------------------------------------------

/** Escape backslash, newline and tab ("\\", "\n", "\t") so a free-text
 *  field survives line- and tab-structured bodies. */
std::string escapeField(std::string_view text);

/** Inverse of escapeField; throws SvcError(Protocol) on a dangling or
 *  unknown escape. */
std::string unescapeField(std::string_view text);

// ---------------------------------------------------------------------
// Typed request/response payloads
// ---------------------------------------------------------------------

/** One benchmark of a wire sweep: a synthetic SPEC 2000 profile by
 *  name, or a recorded trace file by server-local path. */
struct WireJob
{
    std::string name;
    trace::BenchClass cls = trace::BenchClass::Integer;
    /** False: `name` names a spec2000 profile.  True: replay
     *  `tracePath` (a server-local file). */
    bool fromTrace = false;
    std::string tracePath;
    /** Per-job watchdog budget; 0 inherits the request's. */
    std::uint64_t cycleLimit = 0;
};

/**
 * A complete sweep specification as it crosses the wire: everything
 * study::sweepScaling needs, nothing that could differ between the
 * submitting and executing machine.  The identity guarantee of the
 * service is stated over this struct: running decode(encode(r)) through
 * svc::runSweep produces bytes identical to running `r` directly.
 */
struct SweepRequest
{
    std::string model = "ooo"; ///< "ooo" | "inorder"
    std::string predictor = "tournament";
    std::uint64_t instructions = 80000;
    std::uint64_t warmup = 10000;
    std::uint64_t prewarm = 500000;
    std::uint64_t cycleLimit = 0;
    /** Clocking overhead in FO4 (Table 1 default), hexfloat on wire. */
    double overheadFo4 = 1.8;
    /** The t_useful axis, hexfloat on wire. */
    std::vector<double> tUseful;
    std::vector<WireJob> jobs;
    /**
     * Submitting tenant, for admission quotas ("" = the default
     * tenant).  Omitted from the wire when empty; restricted to
     * [A-Za-z0-9._-], at most 64 chars, so ids are safe inside metric
     * names.  Deliberately *not* part of the grid fingerprint — tenants
     * share cache hits; quotas meter admission, not bytes.
     */
    std::string tenant;

    /**
     * Monte Carlo process variation (protocol v4).  mcSamples == 0 (the
     * default) means a deterministic sweep; the mc_* fields are then
     * omitted from the wire, keeping pre-v4 request bodies byte-stable.
     * mcSamples >= 1 expands the planned grid sample-major (see
     * study::expandMonteCarloGrid); every field below participates in
     * the grid fingerprint through the sampled clocks it produces.
     * Sigmas travel in hexfloat, so workers re-derive bit-identical
     * sampled grids from the request body alone.
     */
    std::uint64_t mcSamples = 0;
    std::string mcDist = "normal"; ///< "normal" | "lognormal"
    double mcSigmaLatch = 0.0;
    double mcSigmaSkew = 0.0;
    double mcSigmaJitter = 0.0;
    double mcSigmaDie = 0.0;
    std::uint64_t mcSeed = 0;

    std::string encode() const;
    /** Throws SvcError(Protocol) on malformed bodies. */
    static SweepRequest decode(std::string_view body);
};

/** Lifecycle of a submitted sweep. */
enum class JobState
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

const char *jobStateName(JobState state);
JobState jobStateFromName(const std::string &name); ///< throws Protocol

/** What Poll (and CancelOk) reports about one job. */
struct JobStatusInfo
{
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    /** 1-based position among queued jobs; 0 once dequeued. */
    std::uint64_t queuePosition = 0;
    std::uint64_t cellsTotal = 0;
    /** Cells whose first execution attempt has started this run. */
    std::uint64_t cellsStarted = 0;
    /** Cells whose result is in hand (journaled or merged from a
     *  worker).  v2 field; decode tolerates its absence. */
    std::uint64_t cellsDone = 0;
    /** Why the job failed (state == Failed); Ok otherwise. */
    util::ErrorCode errorCode = util::ErrorCode::Ok;
    std::string errorMessage;

    bool
    terminal() const
    {
        return state == JobState::Done || state == JobState::Failed ||
               state == JobState::Cancelled;
    }

    std::string encode() const;
    static JobStatusInfo decode(std::string_view body);
};

/** The Stats response: live service gauges plus the engineering-metrics
 *  registry snapshot (counters and the sweep-latency histogram). */
struct StatsSnapshot
{
    std::uint64_t queueDepth = 0;
    std::uint64_t maxQueue = 0;
    /** 1 while the dispatcher is executing a sweep. */
    std::uint64_t runningJobs = 0;
    /** Progress of the running sweep (0/0 when idle). */
    std::uint64_t runningCellsStarted = 0;
    std::uint64_t runningCellsTotal = 0;

    /** Lifetime totals. */
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;

    /** Result-store occupancy (0/0 when no cache_dir= is configured);
     *  v3 fields, decode tolerates their absence. */
    std::uint64_t cacheBytes = 0;
    std::uint64_t cacheEntries = 0;

    /** Sweep wall-time histogram (fixed buckets, see svc/server.cc). */
    std::vector<std::uint64_t> latencyBuckets;
    std::uint64_t latencySamples = 0;
    double latencyMeanMs = 0.0;

    /** Registry counters ("svc.*", "cache.*", ...), sorted by name. */
    std::vector<std::pair<std::string, std::uint64_t>> counters;

    std::string encode() const;
    static StatsSnapshot decode(std::string_view body);
};

// ---------------------------------------------------------------------
// Fleet payloads (protocol v2)
// ---------------------------------------------------------------------

/** WorkerHello body: how a worker introduces itself. */
struct WorkerHelloInfo
{
    std::string name;          ///< free text (escaped on the wire)
    std::uint64_t threads = 1; ///< cells the worker runs concurrently

    std::string encode() const;
    static WorkerHelloInfo decode(std::string_view body); ///< throws Protocol
};

/** HelloOk body: the coordinator's side of the registration contract. */
struct HelloOkInfo
{
    std::uint64_t workerId = 0;
    /** How often the worker must heartbeat. */
    std::uint64_t heartbeatMs = 0;
    /** How long a granted cell may run before its lease expires. */
    std::uint64_t leaseTimeoutMs = 0;

    std::string encode() const;
    static HelloOkInfo decode(std::string_view body); ///< throws Protocol
};

/** CellLease body: one grid cell granted to a worker.  The request is
 *  the full SweepRequest encoding so a worker needs no prior state —
 *  it plans the same grid the coordinator did (same fingerprint) and
 *  runs exactly one (point, job) cell of it. */
struct CellLeaseInfo
{
    std::uint64_t sweep = 0; ///< gridFingerprint of the planned sweep
    std::uint64_t point = 0;
    std::uint64_t job = 0;
    std::string requestBody; ///< SweepRequest::encode() (escaped on wire)

    std::string encode() const;
    static CellLeaseInfo decode(std::string_view body); ///< throws Protocol
};

/** CellDone body: a finished cell travelling back to the coordinator.
 *  The payload is the binary checkpoint cell record (study::CellRecord)
 *  — the same bytes a journal stores — escaped for the line body. */
struct CellDoneInfo
{
    std::uint64_t workerId = 0;
    std::uint64_t sweep = 0;
    std::uint64_t point = 0;
    std::uint64_t job = 0;
    std::string cellPayload; ///< encodeCellRecord() bytes (escaped on wire)

    std::string encode() const;
    static CellDoneInfo decode(std::string_view body); ///< throws Protocol
};

/** Failure-detector verdicts for a registered worker. */
enum class WorkerState
{
    Live,    ///< heartbeating within suspectAfterMs
    Suspect, ///< missed heartbeats; leases still honoured
    Dead,    ///< declared dead; leases reclaimed and re-dispatched
};

const char *workerStateName(WorkerState state);
WorkerState workerStateFromName(const std::string &name); ///< throws Protocol

/** One row of the WorkerReport response. */
struct WorkerSnapshot
{
    std::uint64_t id = 0;
    std::string name;
    WorkerState state = WorkerState::Live;
    std::uint64_t activeLeases = 0;
    std::uint64_t cellsCompleted = 0;
    /** Milliseconds since the last frame from this worker. */
    std::uint64_t heartbeatAgeMs = 0;

    /** Tab-separated line list, one worker per line. */
    static std::string encodeList(const std::vector<WorkerSnapshot> &rows);
    static std::vector<WorkerSnapshot>
    decodeList(std::string_view body); ///< throws Protocol
};

/** Encode/decode the one-field "worker_id=<n>" bodies (LeaseRequest,
 *  Heartbeat). */
std::string encodeWorkerId(std::uint64_t id);
std::uint64_t decodeWorkerId(std::string_view body); ///< throws Protocol

/** NoWork body: how long an idle worker should wait before re-asking. */
std::string encodeRetryMs(std::uint64_t retryMs);
std::uint64_t decodeRetryMs(std::string_view body); ///< throws Protocol

/** DoneOk body: did the coordinator accept the cell (false: duplicate
 *  of an already-merged completion, or no longer wanted)? */
std::string encodeAccepted(bool accepted);
bool decodeAccepted(std::string_view body); ///< throws Protocol

/** HeartbeatOk body: does the coordinator know this worker id (false:
 *  the worker was declared dead and must re-register)? */
std::string encodeKnown(bool known);
bool decodeKnown(std::string_view body); ///< throws Protocol

/** Encode/decode the Error record body. */
std::string encodeError(util::ErrorCode code, std::string_view message);
/** Returns (code, message); throws Protocol on a malformed body. */
std::pair<util::ErrorCode, std::string> decodeError(std::string_view body);

/** Encode/decode the one-field "id=<n>" request bodies. */
std::string encodeId(std::uint64_t id);
std::uint64_t decodeId(std::string_view body); ///< throws Protocol

/** SubmitOk body. */
std::string encodeSubmitOk(std::uint64_t id, std::uint64_t cellsTotal);
std::pair<std::uint64_t, std::uint64_t>
decodeSubmitOk(std::string_view body); ///< throws Protocol

} // namespace fo4::svc

#endif // FO4_SVC_PROTOCOL_HH
