#include "isa/microop.hh"

#include <cstdio>

namespace fo4::isa
{

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return "ialu";
      case OpClass::IntMult:
        return "imult";
      case OpClass::FpAdd:
        return "fadd";
      case OpClass::FpMult:
        return "fmult";
      case OpClass::FpDiv:
        return "fdiv";
      case OpClass::FpSqrt:
        return "fsqrt";
      case OpClass::Load:
        return "load";
      case OpClass::Store:
        return "store";
      case OpClass::Branch:
        return "branch";
      case OpClass::Nop:
        return "nop";
    }
    return "?";
}

std::string
MicroOp::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "[%llu] 0x%llx: %s dst=%d src=(%d,%d) addr=0x%llx%s",
                  static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(pc), opClassName(cls), dst,
                  src1, src2, static_cast<unsigned long long>(addr),
                  isBranch() ? (taken ? " taken" : " not-taken") : "");
    return buf;
}

} // namespace fo4::isa
