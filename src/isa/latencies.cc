#include "isa/latencies.hh"

#include "tech/fo4.hh"
#include "util/logging.hh"

namespace fo4::isa
{

int
alpha21264Cycles(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
        return 1;
      case OpClass::IntMult:
        return 7;
      case OpClass::FpAdd:
        return 4;
      case OpClass::FpMult:
        return 4;
      case OpClass::FpDiv:
        return 12;
      case OpClass::FpSqrt:
        return 18;
      case OpClass::Load:
        return 1; // address generation; cache time modelled separately
      case OpClass::Store:
        return 1;
      case OpClass::Branch:
        return 1;
      case OpClass::Nop:
        return 1;
    }
    util::panic("unknown op class %d", static_cast<int>(cls));
}

double
latencyFo4(OpClass cls)
{
    return alpha21264Cycles(cls) * tech::alpha21264PeriodFo4;
}

int
executeCycles(OpClass cls, const tech::ClockModel &clock)
{
    return clock.latencyCycles(latencyFo4(cls));
}

} // namespace fo4::isa
