/**
 * @file
 * Functional-unit latency model (the functional-unit half of Table 3).
 *
 * The paper derives execution latencies from the Alpha 21264's cycle
 * counts at its 17.4 FO4 clock: an operation that takes N cycles on the
 * 21264 has an absolute latency of N x 17.4 FO4, and at a scaled clock of
 * t_useful FO4 per stage it takes ceil(N * 17.4 / t_useful) cycles.  All
 * units are fully pipelined (new operations can start every cycle) and
 * results bypass fully.
 */

#ifndef FO4_ISA_LATENCIES_HH
#define FO4_ISA_LATENCIES_HH

#include "isa/opclass.hh"
#include "tech/clocking.hh"

namespace fo4::isa
{

/** Execution cycles of each op class on the Alpha 21264 (Table 3 row). */
int alpha21264Cycles(OpClass cls);

/** Absolute latency in FO4 (21264 cycles x 17.4 FO4). */
double latencyFo4(OpClass cls);

/**
 * Execution latency in cycles at a scaled clock.  Loads report only their
 * execute (address-generation) stage here; cache access time is modelled
 * by the memory hierarchy.
 */
int executeCycles(OpClass cls, const tech::ClockModel &clock);

} // namespace fo4::isa

#endif // FO4_ISA_LATENCIES_HH
