/**
 * @file
 * Operation classes of the simulated Alpha-like ISA.  The simulator is
 * trace-driven and cycle-level: it models timing, not values, so the op
 * class plus register/memory identifiers fully describe an instruction.
 */

#ifndef FO4_ISA_OPCLASS_HH
#define FO4_ISA_OPCLASS_HH

#include <cstdint>

namespace fo4::isa
{

/** Functional classes with distinct latency or pipeline behaviour. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< add/sub/logic/shift/compare
    IntMult,  ///< integer multiply
    FpAdd,    ///< floating-point add/sub/convert
    FpMult,   ///< floating-point multiply
    FpDiv,    ///< floating-point divide
    FpSqrt,   ///< floating-point square root
    Load,     ///< memory read
    Store,    ///< memory write
    Branch,   ///< conditional branch
    Nop,      ///< no-operation
};

constexpr int numOpClasses = 10;

/** True for classes executed by the floating-point cluster. */
constexpr bool
isFloat(OpClass cls)
{
    return cls == OpClass::FpAdd || cls == OpClass::FpMult ||
           cls == OpClass::FpDiv || cls == OpClass::FpSqrt;
}

/** True for memory operations. */
constexpr bool
isMemory(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

/** Printable mnemonic. */
const char *opClassName(OpClass cls);

} // namespace fo4::isa

#endif // FO4_ISA_OPCLASS_HH
