/**
 * @file
 * The trace-level instruction record consumed by the pipeline models.
 */

#ifndef FO4_ISA_MICROOP_HH
#define FO4_ISA_MICROOP_HH

#include <cstdint>
#include <string>

#include "isa/opclass.hh"

namespace fo4::isa
{

/** No-register marker for src/dst fields. */
constexpr std::int16_t noReg = -1;

/** Number of architectural registers (64 integer + 64 floating point). */
constexpr int numArchRegs = 128;

/**
 * One dynamic instruction from a trace.  Register identifiers are
 * architectural; renaming happens inside the out-of-order core.  Branch
 * outcome and memory address are precomputed by the trace source (the
 * simulator models timing, not execution semantics).
 */
struct MicroOp
{
    std::uint64_t seq = 0;      ///< dynamic sequence number
    std::uint64_t pc = 0;       ///< instruction address
    OpClass cls = OpClass::Nop;
    std::int16_t src1 = noReg;
    std::int16_t src2 = noReg;
    std::int16_t dst = noReg;
    std::uint64_t addr = 0;     ///< effective address for loads/stores
    bool taken = false;         ///< branch outcome

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isBranch() const { return cls == OpClass::Branch; }

    /** Debug rendering, e.g. "[12] 0x40: load r3 <- r1 @0x1000". */
    std::string toString() const;
};

} // namespace fo4::isa

#endif // FO4_ISA_MICROOP_HH
