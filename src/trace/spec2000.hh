/**
 * @file
 * Profiles standing in for the SPEC CPU2000 benchmarks of paper Table 2:
 * nine integer, four vector floating-point and five non-vector
 * floating-point benchmarks.
 *
 * SPEC binaries are licensed, so each profile is a synthetic equivalent
 * calibrated to the class behaviour the paper relies on: integer codes
 * expose little ILP and mispredict often; vector FP codes stream through
 * memory with long dependence distances and ample ILP; non-vector FP
 * codes serialize on long-latency FP chains and expose the least ILP
 * (paper Section 4.1).
 */

#ifndef FO4_TRACE_SPEC2000_HH
#define FO4_TRACE_SPEC2000_HH

#include <vector>

#include "trace/profile.hh"

namespace fo4::trace
{

/** All 18 Table 2 profiles, in paper order. */
std::vector<BenchmarkProfile> spec2000Profiles();

/** Subset of a given class. */
std::vector<BenchmarkProfile> spec2000Profiles(BenchClass cls);

/** Look up a profile by name (e.g. "164.gzip" or "gzip"). Fatal if absent. */
BenchmarkProfile spec2000Profile(const std::string &name);

} // namespace fo4::trace

#endif // FO4_TRACE_SPEC2000_HH
