#include "trace/trace_codec.hh"

#include <cstring>

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::trace
{

TraceRecord
decodeTraceRecord(const unsigned char *bytes)
{
    TraceRecord r;
    static_assert(sizeof(TraceRecord) == 32, "on-disk record layout");
    std::memcpy(&r, bytes, sizeof(r));
    return r;
}

void
encodeTraceRecord(const TraceRecord &r, unsigned char *bytes)
{
    std::memcpy(bytes, &r, sizeof(r));
}

void
checkTraceRecord(const TraceRecord &r, const std::string &path,
                 std::size_t index)
{
    if (r.cls >= isa::numOpClasses) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("corrupt trace '%s': record %zu has op class "
                            "%u out of range [0, %d)",
                            path.c_str(), index, r.cls,
                            isa::numOpClasses));
    }
    for (const std::int16_t reg : {r.src1, r.src2, r.dst}) {
        if (reg != isa::noReg && (reg < 0 || reg >= isa::numArchRegs)) {
            throw util::TraceError(
                util::ErrorCode::TraceCorrupt,
                util::strprintf("corrupt trace '%s': record %zu names "
                                "register %d outside [0, %d)",
                                path.c_str(), index, reg,
                                isa::numArchRegs));
        }
    }
}

void
appendCheckedRecords(const unsigned char *bytes, std::size_t size,
                     const std::string &path,
                     std::vector<isa::MicroOp> &out)
{
    const std::size_t recordBytes = sizeof(TraceRecord);
    const std::size_t leftover = size % recordBytes;
    const std::size_t records = size / recordBytes;
    if (leftover != 0) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("trace file '%s' is truncated: %ld stray "
                            "bytes after %ld complete records",
                            path.c_str(), static_cast<long>(leftover),
                            static_cast<long>(out.size() + records)));
    }
    out.reserve(out.size() + records);
    for (std::size_t i = 0; i < records; ++i) {
        const TraceRecord r = decodeTraceRecord(bytes + i * recordBytes);
        checkTraceRecord(r, path, out.size());
        out.push_back(unpackTraceRecord(r));
    }
}

} // namespace fo4::trace
