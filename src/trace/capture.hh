#ifndef FO4_TRACE_CAPTURE_HH
#define FO4_TRACE_CAPTURE_HH

/**
 * @file
 * The versioned binary trace-capture container — the fifth durable
 * on-disk contract (after journal, checkpoint, CSV and blob store).
 *
 * A capture stores the microop stream of one recorded run plus a
 * key=value metadata block describing the run it came from.  It reuses
 * the util::Journal framing discipline: a 32-byte CRC-protected header
 * followed by `u32 len | u32 crc32(payload) | payload` frames, where
 * payload[0] is a frame kind:
 *
 *   'M'  metadata — "key=value\n" text lines (first frame, written once)
 *   'O'  op batch — a whole number of packed 32-byte TraceRecords
 *   'E'  end frame — u64 record count; written by close() and marks
 *        the capture finalized
 *
 * Durability matches the journal: the writer builds `path + ".tmp"`,
 * fsyncs, renames over the final path and fsyncs the directory, so a
 * capture is published whole-file-atomically or not at all.  The end
 * frame distinguishes a torn tail (crash before close(): valid prefix
 * recoverable, reported via CaptureContents::tornTail / !finalized)
 * from bit rot inside a complete frame (typed TraceError, TraceCorrupt).
 * See DESIGN.md §16 for the full corruption ladder.
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/microop.hh"

namespace fo4::trace
{

/** Capture format version this build reads and writes. */
constexpr std::uint32_t kCaptureVersion = 1;

/**
 * Largest frame payload readCapture() will accept.  A length field
 * above this is bit rot, not a frame: it is refused (TraceCorrupt)
 * before any allocation or tail comparison, so a rotted length cannot
 * masquerade as a torn tail or drive a huge reserve.  The writer
 * flushes op batches far below this.
 */
constexpr std::uint32_t kMaxCaptureFrame = 1u << 20;

/** Ordered key=value metadata attached to a capture. */
using CaptureMeta = std::vector<std::pair<std::string, std::string>>;

/** Everything readCapture() could salvage from a capture file. */
struct CaptureContents
{
    CaptureMeta meta;
    std::vector<isa::MicroOp> ops;
    /** True iff the end frame was seen and its count matched. */
    bool finalized = false;
    /** True iff the file ends in a partial frame (crash mid-append). */
    bool tornTail = false;
};

/**
 * True iff `path` starts with the capture magic.  A missing or
 * unreadable file is simply "not a capture" — the caller's format
 * fallback will produce the typed open error.
 */
bool isCaptureFile(const std::string &path);

/**
 * Reads and validates a capture file.
 *
 * Lenient about *truncation* (the journal's torn-tail rule): a file
 * cut anywhere after the header yields the valid frame prefix with
 * `tornTail`/`finalized` describing what is missing, so stats tooling
 * can recover a crashed recording.  Strict about *corruption*: a bad
 * magic/version/record size throws TraceError(TraceFormat); a CRC
 * mismatch, oversize length, unknown frame kind, frame after the end
 * frame, count mismatch or invalid record throws
 * TraceError(TraceCorrupt).  An unreadable file throws
 * TraceError(TraceIo).
 */
CaptureContents readCapture(const std::string &path);

/**
 * Streams a capture to disk.  create() opens `path + ".tmp"`; close()
 * seals the end frame, fsyncs and renames into place.  A writer
 * destroyed without close() unlinks the tmp file — an aborted
 * recording never publishes a capture.  All I/O failures throw
 * TraceError(TraceIo); write faults injected via
 * util::setDiskFaultHook() surface the same way.
 */
class CaptureWriter
{
  public:
    /**
     * `opsPerFrame` sets the op-batch flush threshold; tests shrink it
     * to exercise multi-frame files cheaply.
     */
    static CaptureWriter create(const std::string &path,
                                const CaptureMeta &meta = {},
                                std::size_t opsPerFrame = 2048);

    CaptureWriter(CaptureWriter &&other) noexcept;
    CaptureWriter &operator=(CaptureWriter &&other) noexcept;
    CaptureWriter(const CaptureWriter &) = delete;
    CaptureWriter &operator=(const CaptureWriter &) = delete;
    ~CaptureWriter();

    void append(const isa::MicroOp &op);

    /** Records appended so far. */
    std::uint64_t appended() const { return count; }

    /**
     * Flushes, writes the end frame, fsyncs and atomically publishes
     * the capture.  Throws ConfigError on an empty capture — the same
     * refusal recordTrace() makes for the flat format.
     */
    void close();

  private:
    CaptureWriter(int fd, std::string finalPath, std::string tmp,
                  std::size_t opsPerFrame);

    void writeFrame(char kind, const void *body, std::size_t size);
    void flushOps();
    void abandon() noexcept;

    int fd = -1;
    std::string path;
    std::string tmpPath;
    std::size_t opsPerFrame = 2048;
    std::vector<unsigned char> pending;
    std::uint64_t count = 0;
};

} // namespace fo4::trace

#endif // FO4_TRACE_CAPTURE_HH
