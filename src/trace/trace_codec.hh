#ifndef FO4_TRACE_TRACE_CODEC_HH
#define FO4_TRACE_TRACE_CODEC_HH

/**
 * @file
 * Shared record codec and corruption matrix for the on-disk trace
 * formats.
 *
 * Two containers store packed TraceRecords: the flat v1 trace file
 * (trace::FileTrace) and the CRC-framed capture container
 * (trace/capture.hh).  Both decoders funnel every record read from an
 * untrusted file through the helpers here, so the two formats accept
 * exactly the same records and reject corruption with the same typed
 * util::TraceError messages — the formats cannot drift apart.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/microop.hh"
#include "trace/file_trace.hh"

namespace fo4::trace
{

/**
 * Decodes one packed 32-byte record from a byte buffer.  The on-disk
 * layout is the in-memory layout of TraceRecord (packed, asserted
 * 32 bytes); this helper keeps that single memcpy in one place.
 */
TraceRecord decodeTraceRecord(const unsigned char *bytes);

/** Encodes one record into exactly sizeof(TraceRecord) bytes. */
void encodeTraceRecord(const TraceRecord &r, unsigned char *bytes);

/**
 * Range-checks a record read from an untrusted file.  Throws
 * util::TraceError(TraceCorrupt) naming `path` and the record `index`
 * when the op class or a register number is out of range.
 */
void checkTraceRecord(const TraceRecord &r, const std::string &path,
                      std::size_t index);

/**
 * Decodes, validates and appends a run of packed records to `out`.
 *
 * `size` must be a whole number of records; a remainder means the
 * container was truncated mid-record, and silently dropping the tail
 * would replay a different instruction stream than was recorded —
 * throws util::TraceError(TraceCorrupt) with the stray-byte count.
 * Record indices in error messages continue from `out.size()`, so a
 * framed container reports absolute record numbers across frames.
 */
void appendCheckedRecords(const unsigned char *bytes, std::size_t size,
                          const std::string &path,
                          std::vector<isa::MicroOp> &out);

} // namespace fo4::trace

#endif // FO4_TRACE_TRACE_CODEC_HH
