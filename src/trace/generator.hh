/**
 * @file
 * Synthetic instruction stream generator: turns a BenchmarkProfile into a
 * deterministic, restartable MicroOp stream.
 */

#ifndef FO4_TRACE_GENERATOR_HH
#define FO4_TRACE_GENERATOR_HH

#include <memory>
#include <vector>

#include "trace/profile.hh"
#include "trace/trace.hh"
#include "util/random.hh"

namespace fo4::trace
{

/**
 * Generates an instruction stream with the statistical properties of a
 * BenchmarkProfile:
 *
 *  - basic blocks of geometric size ending in a conditional branch;
 *  - register dataflow built by sampling producer distances, with
 *    separate integer and floating-point result streams;
 *  - branch outcomes from a static-branch population that mixes strongly
 *    biased, short-pattern and hard (near-random) branches;
 *  - memory addresses mixing sequential stride streams with
 *    Zipf-distributed references over the working set.
 *
 * Streams are bit-reproducible: two generators built from the same
 * profile produce identical streams, and reset() rewinds exactly.
 */
class SyntheticTraceGenerator : public TraceSource
{
  public:
    explicit SyntheticTraceGenerator(const BenchmarkProfile &profile);

    isa::MicroOp next() override;
    void reset() override;

    const BenchmarkProfile &profile() const { return prof; }

  private:
    struct StaticBranch
    {
        std::uint64_t pc;
        double takenBias;       ///< for biased/hard branches
        int patternPeriod;      ///< 0 = not a pattern branch
        int patternPhase;       ///< mutable position in the pattern
        bool correlated;        ///< outcome follows global history parity
        std::uint64_t target;   ///< taken target block address
    };

    struct StrideStream
    {
        std::uint64_t base;
        std::uint64_t stride;
        std::uint64_t count;
    };

    void rebuild();
    isa::MicroOp makeBranch();
    isa::MicroOp makeOp(isa::OpClass cls);
    std::int16_t pickSource(bool fpPreferred, double meanDistance);
    std::uint64_t nextAddress();

    BenchmarkProfile prof;
    util::Rng rng;
    std::unique_ptr<util::DiscreteSampler> opMix;
    std::unique_ptr<util::ZipfSampler> branchZipf;
    std::unique_ptr<util::ZipfSampler> memZipf;

    std::vector<StaticBranch> branches;
    std::vector<StrideStream> streams;
    std::size_t nextStream = 0;

    // Recent producer rings (architectural register ids, newest first).
    std::vector<std::int16_t> intRing;
    std::vector<std::int16_t> fpRing;
    std::size_t intRingPos = 0;
    std::size_t fpRingPos = 0;

    int nextIntReg = 0;
    int nextFpReg = 0;

    std::uint64_t seq = 0;
    std::uint64_t pc = 0x1000;
    int blockRemaining = 0;
    std::uint64_t outcomeHistory = 0; ///< recent branch outcomes (LSB newest)
};

} // namespace fo4::trace

#endif // FO4_TRACE_GENERATOR_HH
