#include "trace/file_trace.hh"

#include <cstring>

#include "util/logging.hh"

namespace fo4::trace
{

namespace
{

constexpr char magic[8] = {'F', 'O', '4', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;

/** Fixed-size on-disk record (little-endian, packed by hand). */
struct Record
{
    std::uint64_t seq;
    std::uint64_t pc;
    std::uint64_t addr;
    std::int16_t src1;
    std::int16_t src2;
    std::int16_t dst;
    std::uint8_t cls;
    std::uint8_t taken;
};
static_assert(sizeof(Record) == 32, "trace record must be 32 bytes");

Record
toRecord(const isa::MicroOp &op)
{
    Record r;
    r.seq = op.seq;
    r.pc = op.pc;
    r.addr = op.addr;
    r.src1 = op.src1;
    r.src2 = op.src2;
    r.dst = op.dst;
    r.cls = static_cast<std::uint8_t>(op.cls);
    r.taken = op.taken ? 1 : 0;
    return r;
}

isa::MicroOp
fromRecord(const Record &r)
{
    FO4_ASSERT(r.cls < isa::numOpClasses, "corrupt trace: bad op class %u",
               r.cls);
    isa::MicroOp op;
    op.seq = r.seq;
    op.pc = r.pc;
    op.addr = r.addr;
    op.src1 = r.src1;
    op.src2 = r.src2;
    op.dst = r.dst;
    op.cls = static_cast<isa::OpClass>(r.cls);
    op.taken = r.taken != 0;
    return op;
}

} // namespace

void
recordTrace(const std::string &path, TraceSource &source,
            std::uint64_t count)
{
    FO4_ASSERT(count > 0, "recording an empty trace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        util::fatal("cannot open trace file '%s' for writing",
                    path.c_str());

    std::fwrite(magic, sizeof(magic), 1, f);
    const std::uint32_t header[2] = {version, sizeof(Record)};
    std::fwrite(header, sizeof(header), 1, f);

    source.reset();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Record r = toRecord(source.next());
        if (std::fwrite(&r, sizeof(r), 1, f) != 1) {
            std::fclose(f);
            util::fatal("short write to trace file '%s'", path.c_str());
        }
    }
    std::fclose(f);
}

FileTrace::FileTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        util::fatal("cannot open trace file '%s'", path.c_str());

    char m[8];
    std::uint32_t header[2];
    if (std::fread(m, sizeof(m), 1, f) != 1 ||
        std::fread(header, sizeof(header), 1, f) != 1 ||
        std::memcmp(m, magic, sizeof(magic)) != 0) {
        std::fclose(f);
        util::fatal("'%s' is not a fo4pipe trace file", path.c_str());
    }
    if (header[0] != version || header[1] != sizeof(Record)) {
        std::fclose(f);
        util::fatal("trace file '%s' has unsupported version %u",
                    path.c_str(), header[0]);
    }

    Record r;
    while (std::fread(&r, sizeof(r), 1, f) == 1)
        ops.push_back(fromRecord(r));
    std::fclose(f);
    if (ops.empty())
        util::fatal("trace file '%s' contains no instructions",
                    path.c_str());
}

isa::MicroOp
FileTrace::next()
{
    isa::MicroOp op = ops[pos];
    pos = (pos + 1) % ops.size();
    op.seq = seq++;
    return op;
}

void
FileTrace::reset()
{
    pos = 0;
    seq = 0;
}

} // namespace fo4::trace
