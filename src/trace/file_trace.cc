#include "trace/file_trace.hh"

#include <cstring>

#include "trace/trace_codec.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::trace
{

namespace
{

constexpr char magic[8] = {'F', 'O', '4', 'T', 'R', 'A', 'C', 'E'};
constexpr std::uint32_t version = 1;
constexpr long headerBytes = 16;

/** Closes the stream on every exit path, including thrown TraceErrors. */
struct FileCloser
{
    std::FILE *f;
    ~FileCloser() { std::fclose(f); }
};

} // namespace

TraceRecord
packTraceRecord(const isa::MicroOp &op)
{
    TraceRecord r;
    r.seq = op.seq;
    r.pc = op.pc;
    r.addr = op.addr;
    r.src1 = op.src1;
    r.src2 = op.src2;
    r.dst = op.dst;
    r.cls = static_cast<std::uint8_t>(op.cls);
    r.taken = op.taken ? 1 : 0;
    return r;
}

isa::MicroOp
unpackTraceRecord(const TraceRecord &r)
{
    isa::MicroOp op;
    op.seq = r.seq;
    op.pc = r.pc;
    op.addr = r.addr;
    op.src1 = r.src1;
    op.src2 = r.src2;
    op.dst = r.dst;
    op.cls = static_cast<isa::OpClass>(r.cls);
    op.taken = r.taken != 0;
    return op;
}

void
recordTrace(const std::string &path, TraceSource &source,
            std::uint64_t count)
{
    if (count == 0)
        throw util::ConfigError("recording an empty trace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            util::strprintf("cannot open trace file '%s' for writing",
                            path.c_str()));
    }
    FileCloser closer{f};

    std::fwrite(magic, sizeof(magic), 1, f);
    const std::uint32_t header[2] = {version, sizeof(TraceRecord)};
    std::fwrite(header, sizeof(header), 1, f);

    source.reset();
    for (std::uint64_t i = 0; i < count; ++i) {
        const TraceRecord r = packTraceRecord(source.next());
        if (std::fwrite(&r, sizeof(r), 1, f) != 1) {
            throw util::TraceError(
                util::ErrorCode::TraceIo,
                util::strprintf("short write to trace file '%s'",
                                path.c_str()));
        }
    }
}

FileTrace::FileTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            util::strprintf("cannot open trace file '%s'", path.c_str()));
    }
    FileCloser closer{f};

    std::fseek(f, 0, SEEK_END);
    const long fileBytes = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);

    if (fileBytes < headerBytes) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("trace file '%s' is truncated: %ld bytes, "
                            "shorter than the %ld-byte header",
                            path.c_str(), fileBytes, headerBytes));
    }

    char m[8];
    std::uint32_t header[2];
    if (std::fread(m, sizeof(m), 1, f) != 1 ||
        std::fread(header, sizeof(header), 1, f) != 1) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            util::strprintf("cannot read header of trace file '%s'",
                            path.c_str()));
    }
    if (std::memcmp(m, magic, sizeof(magic)) != 0) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("'%s' is not a fo4pipe trace file",
                            path.c_str()));
    }
    if (header[0] != version) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("trace file '%s' has unsupported version %u "
                            "(expected %u)",
                            path.c_str(), header[0], version));
    }
    if (header[1] != sizeof(TraceRecord)) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("trace file '%s' declares %u-byte records "
                            "(expected %zu)",
                            path.c_str(), header[1], sizeof(TraceRecord)));
    }

    // Decoding and validation (including the trailing-partial-record
    // refusal: silently dropping a torn tail would replay a different
    // instruction stream than was recorded) is shared with the capture
    // container in trace_codec.cc, so both formats reject corruption
    // identically.
    const long payloadBytes = fileBytes - headerBytes;
    std::vector<unsigned char> payload(
        static_cast<std::size_t>(payloadBytes));
    if (payloadBytes > 0 &&
        std::fread(payload.data(), 1, payload.size(), f) !=
            payload.size()) {
        throw util::TraceError(
            util::ErrorCode::TraceIo,
            util::strprintf("short read of %ld payload bytes from "
                            "trace file '%s'",
                            payloadBytes, path.c_str()));
    }
    appendCheckedRecords(payload.data(), payload.size(), path, ops);
    if (ops.empty()) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("trace file '%s' contains no instructions",
                            path.c_str()));
    }
}

util::Expected<FileTrace>
FileTrace::load(const std::string &path)
{
    try {
        return FileTrace(path);
    } catch (const util::SimError &e) {
        return e.toStatus();
    }
}

isa::MicroOp
FileTrace::next()
{
    isa::MicroOp op = ops[pos];
    pos = (pos + 1) % ops.size();
    op.seq = seq++;
    return op;
}

void
FileTrace::reset()
{
    pos = 0;
    seq = 0;
}

} // namespace fo4::trace
