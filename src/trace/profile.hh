/**
 * @file
 * Statistical workload profiles — the repo's stand-in for the SPEC
 * CPU2000 binaries the paper simulates (Table 2).
 *
 * The pipeline-depth study depends on workload *characteristics*: how
 * much instruction-level parallelism the dependence structure exposes,
 * how predictable the branches are, and how the memory stream behaves.
 * A profile captures those characteristics; the SyntheticTraceGenerator
 * turns a profile into a concrete, reproducible instruction stream.
 */

#ifndef FO4_TRACE_PROFILE_HH
#define FO4_TRACE_PROFILE_HH

#include <cstdint>
#include <string>

#include "util/status.hh"

namespace fo4::trace
{

/** The three benchmark classes the paper reports separately. */
enum class BenchClass
{
    Integer,
    VectorFp,
    NonVectorFp,
};

const char *benchClassName(BenchClass cls);

/** Statistical description of one benchmark. */
struct BenchmarkProfile
{
    std::string name;
    BenchClass cls = BenchClass::Integer;

    // --- operation mix (weights, normalized by the generator; branches
    //     are generated separately at basic-block boundaries) ---
    double wIntAlu = 1.0;
    double wIntMult = 0.0;
    double wFpAdd = 0.0;
    double wFpMult = 0.0;
    double wFpDiv = 0.0;
    double wFpSqrt = 0.0;
    double wLoad = 0.3;
    double wStore = 0.15;

    // --- dependence structure ---
    /** Mean producer distance of the first source operand: how many
     *  values back in the stream of produced results an instruction's
     *  input typically comes from.  Small = serial code, large = ILP. */
    double meanDepDistance = 3.0;
    /** Minimum producer distance.  Vector code has no short loop-carried
     *  dependences: consecutive iterations are independent, so its
     *  minimum distance is large even when the mean is similar. */
    double minDepDistance = 1.0;
    /** Probability an instruction has a second register source. */
    double src2Prob = 0.5;
    /** Fraction of FP-op sources drawn from the FP result stream. */
    double fpSourceAffinity = 0.9;
    /** Fraction of loads that produce floating-point values. */
    double fpLoadFraction = 0.0;

    // --- control flow ---
    /** Mean non-branch instructions per basic block (geometric). */
    double meanBlockSize = 6.0;
    /** Number of static branch sites (hot set selected by a Zipf walk). */
    int staticBranches = 256;
    /** Fraction of static branches that are strongly biased. */
    double biasedBranchFraction = 0.6;
    /** Taken probability of a strongly biased branch. */
    double strongBias = 0.95;
    /** Fraction of static branches following a short repeating pattern
     *  (captured well by a local-history predictor). */
    double patternBranchFraction = 0.2;
    /** Fraction of static branches whose outcome correlates with recent
     *  global branch history (captured well by a gshare-style global
     *  predictor); the remainder are hard, near-random branches. */
    double correlatedBranchFraction = 0.1;
    /** Probability a strongly biased branch is biased toward taken
     *  (loop back-edges dominate real branch populations). */
    double takenBiasFraction = 0.8;
    /** Mean producer distance of the branch condition operand. */
    double branchDepDistance = 2.0;

    // --- memory behaviour ---
    std::uint64_t workingSetBytes = 1 << 20;
    /** Fraction of memory references that belong to stride streams. */
    double strideFraction = 0.3;
    int strideStreams = 4;
    /** Probability a stream walks in line-sized (64B) rather than
     *  element-sized (8B) strides; line strides miss the DL1 on every
     *  reference. */
    double lineStrideProb = 0.2;
    /** Zipf exponent of the non-streaming reference distribution. */
    double zipfExponent = 0.8;

    /** Seed for the benchmark's instruction stream. */
    std::uint64_t seed = 1;

    /**
     * Check every field range and report all violations at once in the
     * returned Status, so a hand-written profile can be fixed in one
     * pass rather than one abort at a time.
     */
    util::Status validate() const;

    /** Throw ConfigError (with the full violation list) if invalid. */
    void validateOrThrow() const;

    /**
     * Canonical rendering of every field that shapes the generated
     * instruction stream, doubles in hexfloat so no precision is lost.
     * Two profiles with equal keys generate identical streams; used as
     * the DecodedTrace registry key.
     */
    std::string identityKey() const;
};

} // namespace fo4::trace

#endif // FO4_TRACE_PROFILE_HH
