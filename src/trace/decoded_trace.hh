/**
 * @file
 * One-pass trace materialization.  A DecodedTrace pulls a TraceSource's
 * MicroOp stream exactly once and stores it as packed TraceRecords (the
 * file_trace layout), so every grid cell of a sweep column can replay
 * the same benchmark without regenerating it.  Cells at different clock
 * periods walk different distances into the stream; the cache grows on
 * demand and is safe to read from many simulation threads at once.
 *
 * Identity: both SyntheticTraceGenerator and FileTrace number the ops
 * they emit by stream position (op.seq == index), so a record replayed
 * from the cache is bit-identical to one pulled live — the batched
 * simulation path cannot change bytes by construction.
 *
 * The process-wide DecodedTraceRegistry keys caches by the profile's
 * identityKey() (or by trace file path) and *never* caches a failed
 * load: a trace file that is missing on one attempt may reappear on a
 * retry (RetryPolicy treats TraceIo as transient), and a cached failure
 * would turn that transient into a permanent verdict.
 */

#ifndef FO4_TRACE_DECODED_TRACE_HH
#define FO4_TRACE_DECODED_TRACE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/file_trace.hh"
#include "trace/profile.hh"
#include "trace/trace.hh"

namespace fo4::trace
{

/**
 * An append-only, chunked store of one benchmark's decoded instruction
 * stream.  record(i) materializes through index i on first demand
 * (serialized by an internal mutex) and is a wait-free array read on
 * every later call, from any thread.
 */
class DecodedTrace
{
  public:
    /** Takes ownership of the base stream; `key` names this trace in
     *  the registry (and in warm-state cache keys). */
    DecodedTrace(std::unique_ptr<TraceSource> base, std::string key);

    /** The record at stream index i, materializing it if needed. */
    const TraceRecord &record(std::uint64_t i)
    {
        if (i < produced.load(std::memory_order_acquire)) [[likely]]
            return chunks[i >> chunkShift][i & chunkMask];
        return materialize(i);
    }

    const std::string &key() const { return name; }

    /** Records decoded so far (monotone; for tests and metrics). */
    std::uint64_t materializedRecords() const
    {
        return produced.load(std::memory_order_acquire);
    }

  private:
    const TraceRecord &materialize(std::uint64_t i);

    // 16K records (512 KiB) per chunk; the fixed pointer directory caps
    // the stream at 256M records (8 GiB) — far beyond any sweep cell,
    // and hitting it is an internal error, not silent truncation.
    static constexpr unsigned chunkShift = 14;
    static constexpr std::uint64_t chunkMask = (1ull << chunkShift) - 1;
    static constexpr std::uint64_t maxChunks = 1ull << 14;

    std::string name;
    std::unique_ptr<TraceSource> base;
    std::unique_ptr<std::unique_ptr<TraceRecord[]>[]> chunks;
    /** Published record count: stores before the release here are
     *  visible to any reader whose acquire load covers index i. */
    std::atomic<std::uint64_t> produced{0};
    std::mutex growLock;
};

/**
 * A TraceSource replaying one cursor over a shared DecodedTrace.  Each
 * grid cell owns its own view; the underlying cache is shared.  The
 * batched cores bypass next() and read packed records directly.
 */
class DecodedTraceView final : public TraceSource
{
  public:
    explicit DecodedTraceView(std::shared_ptr<DecodedTrace> trace)
        : cache(std::move(trace))
    {
    }

    isa::MicroOp next() override { return unpackTraceRecord(nextRecord()); }
    void reset() override { pos = 0; }

    /** Packed fast path for the batched cores (no virtual dispatch). */
    const TraceRecord &nextRecord() { return cache->record(pos++); }

    DecodedTrace &trace() { return *cache; }
    std::shared_ptr<DecodedTrace> share() const { return cache; }

  private:
    std::shared_ptr<DecodedTrace> cache;
    std::uint64_t pos = 0;
};

/**
 * Process-wide cache of decoded traces, one per distinct benchmark
 * identity.  Lookups that miss construct the base source (and rethrow
 * its errors uncached); hits share the existing stream.
 */
class DecodedTraceRegistry
{
  public:
    static DecodedTraceRegistry &global();

    /** View over the decoded stream of a synthetic benchmark.  Throws
     *  ConfigError for an invalid profile (every call — never cached). */
    std::unique_ptr<DecodedTraceView>
    viewForProfile(const BenchmarkProfile &profile);

    /** View over the decoded stream of a recorded trace file.  Throws
     *  the FileTrace load errors (every failing call — never cached). */
    std::unique_ptr<DecodedTraceView> viewForFile(const std::string &path);

    /** Cached trace count (tests). */
    std::size_t size() const;

    /** Drop all cached traces.  Live views keep their streams alive;
     *  later lookups re-materialize.  For tests and memory pressure. */
    void clear();

  private:
    std::unique_ptr<DecodedTraceView>
    viewFor(const std::string &key,
            const std::function<std::unique_ptr<TraceSource>()> &make);

    mutable std::mutex lock;
    std::map<std::string, std::shared_ptr<DecodedTrace>> traces;
};

} // namespace fo4::trace

#endif // FO4_TRACE_DECODED_TRACE_HH
