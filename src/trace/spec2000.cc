#include "trace/spec2000.hh"

#include "util/status.hh"

namespace fo4::trace
{

namespace
{

/** Baseline integer profile; per-benchmark tweaks below. */
BenchmarkProfile
integerBase(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    p.cls = BenchClass::Integer;
    p.wIntAlu = 0.50;
    p.wIntMult = 0.01;
    p.wLoad = 0.26;
    p.wStore = 0.12;
    p.meanDepDistance = 2.6;
    p.src2Prob = 0.55;
    p.meanBlockSize = 6.0;
    p.staticBranches = 512;
    p.biasedBranchFraction = 0.55;
    p.strongBias = 0.95;
    p.patternBranchFraction = 0.20;
    p.correlatedBranchFraction = 0.15;
    p.branchDepDistance = 2.0;
    p.workingSetBytes = 1ull << 20;
    p.strideFraction = 0.20;
    p.strideStreams = 4;
    p.zipfExponent = 1.45;
    p.seed = seed;
    return p;
}

/** Baseline vector floating-point profile. */
BenchmarkProfile
vectorFpBase(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    p.cls = BenchClass::VectorFp;
    p.wIntAlu = 0.18;
    p.wFpAdd = 0.22;
    p.wFpMult = 0.18;
    p.wFpDiv = 0.004;
    p.wLoad = 0.34;
    p.wStore = 0.14;
    p.fpLoadFraction = 0.85;
    p.fpSourceAffinity = 0.9;
    p.meanDepDistance = 20.0;
    p.minDepDistance = 16.0;
    p.src2Prob = 0.7;
    p.meanBlockSize = 32.0;
    p.staticBranches = 64;
    p.biasedBranchFraction = 0.85;
    p.strongBias = 0.985;
    p.patternBranchFraction = 0.12;
    p.correlatedBranchFraction = 0.03;
    p.branchDepDistance = 8.0;
    p.workingSetBytes = 640ull << 10;
    p.strideFraction = 0.90;
    p.strideStreams = 8;
    p.lineStrideProb = 0.0;
    p.zipfExponent = 1.20;
    p.seed = seed;
    return p;
}

/** Baseline non-vector floating-point profile. */
BenchmarkProfile
nonVectorFpBase(const std::string &name, std::uint64_t seed)
{
    BenchmarkProfile p;
    p.name = name;
    p.cls = BenchClass::NonVectorFp;
    p.wIntAlu = 0.22;
    p.wFpAdd = 0.20;
    p.wFpMult = 0.15;
    p.wFpDiv = 0.03;
    p.wFpSqrt = 0.008;
    p.wLoad = 0.26;
    p.wStore = 0.11;
    p.fpLoadFraction = 0.75;
    p.fpSourceAffinity = 0.92;
    p.wLoad = 0.30;
    p.wStore = 0.13;
    p.meanDepDistance = 4.5;
    p.minDepDistance = 2.0;
    p.src2Prob = 0.65;
    p.meanBlockSize = 13.0;
    p.staticBranches = 192;
    p.biasedBranchFraction = 0.75;
    p.strongBias = 0.97;
    p.patternBranchFraction = 0.15;
    p.correlatedBranchFraction = 0.05;
    p.branchDepDistance = 3.0;
    p.workingSetBytes = 4ull << 20;
    p.strideFraction = 0.45;
    p.strideStreams = 6;
    p.lineStrideProb = 0.1;
    p.zipfExponent = 1.30;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<BenchmarkProfile>
spec2000Profiles()
{
    std::vector<BenchmarkProfile> all;

    // --- integer (paper Table 2, left column) ---
    {
        // gzip: compression; tight loops over a modest window, loads of
        // byte handling, fairly predictable loop branches.
        auto p = integerBase("164.gzip", 164);
        p.workingSetBytes = 512 << 10;
        p.strideFraction = 0.40;
        p.meanDepDistance = 2.8;
        all.push_back(p);
    }
    {
        // vpr: place & route; pointer-heavy with data-dependent branches.
        auto p = integerBase("175.vpr", 175);
        p.biasedBranchFraction = 0.50;
        p.patternBranchFraction = 0.15;
        p.workingSetBytes = 2ull << 20;
        all.push_back(p);
    }
    {
        // gcc: large code footprint, very branchy, short blocks.
        auto p = integerBase("176.gcc", 176);
        p.meanBlockSize = 4.5;
        p.staticBranches = 2048;
        p.biasedBranchFraction = 0.55;
        p.workingSetBytes = 4ull << 20;
        all.push_back(p);
    }
    {
        // mcf: pointer chasing over a huge working set; memory bound
        // with serial dependence chains.
        auto p = integerBase("181.mcf", 181);
        p.workingSetBytes = 16ull << 20;
        p.strideFraction = 0.05;
        p.meanDepDistance = 1.8;
        p.wLoad = 0.34;
        p.zipfExponent = 1.1;
        all.push_back(p);
    }
    {
        // parser: dictionary lookups, short blocks, hard branches.
        auto p = integerBase("197.parser", 197);
        p.meanBlockSize = 5.0;
        p.biasedBranchFraction = 0.50;
        p.workingSetBytes = 8ull << 20;
        all.push_back(p);
    }
    {
        // eon: C++ ray tracer; some FP mixed into integer control.
        auto p = integerBase("252.eon", 252);
        p.wFpAdd = 0.08;
        p.wFpMult = 0.06;
        p.fpLoadFraction = 0.2;
        p.meanDepDistance = 3.2;
        p.meanBlockSize = 7.0;
        p.biasedBranchFraction = 0.65;
        all.push_back(p);
    }
    {
        // perlbmk: interpreter dispatch; large branch population.
        auto p = integerBase("253.perlbmk", 253);
        p.staticBranches = 1536;
        p.meanBlockSize = 5.0;
        p.patternBranchFraction = 0.10;
        all.push_back(p);
    }
    {
        // bzip2: blocksort compression; streaming plus random access.
        auto p = integerBase("256.bzip2", 256);
        p.strideFraction = 0.35;
        p.workingSetBytes = 2ull << 20;
        p.meanDepDistance = 3.0;
        all.push_back(p);
    }
    {
        // twolf: placement/routing; small structures, hard branches.
        auto p = integerBase("300.twolf", 300);
        p.biasedBranchFraction = 0.45;
        p.workingSetBytes = 256 << 10;
        p.meanDepDistance = 2.4;
        all.push_back(p);
    }

    // --- vector floating point ---
    {
        // swim: shallow-water stencil; long unit-stride sweeps.
        auto p = vectorFpBase("171.swim", 171);
        p.workingSetBytes = 768ull << 10;
        p.strideFraction = 0.95;
        p.meanDepDistance = 26.0;
        p.minDepDistance = 22.0;
        p.meanBlockSize = 40.0;
        all.push_back(p);
    }
    {
        // mgrid: multigrid solver; regular 3D sweeps.
        auto p = vectorFpBase("172.mgrid", 172);
        p.meanDepDistance = 22.0;
        p.minDepDistance = 18.0;
        p.meanBlockSize = 36.0;
        all.push_back(p);
    }
    {
        // applu: PDE solver; slightly shorter vectors, a few divides.
        auto p = vectorFpBase("173.applu", 173);
        p.wFpDiv = 0.012;
        p.meanDepDistance = 18.0;
        p.minDepDistance = 14.0;
        p.meanBlockSize = 26.0;
        all.push_back(p);
    }
    {
        // equake: sparse earthquake simulation; vector-like with some
        // indirection.
        auto p = vectorFpBase("183.equake", 183);
        p.workingSetBytes = 512ull << 10;
        p.strideFraction = 0.70;
        p.zipfExponent = 1.1;
        p.meanDepDistance = 15.0;
        p.minDepDistance = 11.0;
        p.meanBlockSize = 20.0;
        all.push_back(p);
    }

    // --- non-vector floating point ---
    {
        // mesa: software rasterizer; FP with integer control.
        auto p = nonVectorFpBase("177.mesa", 177);
        p.wIntAlu = 0.30;
        p.meanDepDistance = 7.0;
        p.minDepDistance = 4.0;
        p.fpLoadFraction = 0.6;
        p.meanBlockSize = 10.0;
        all.push_back(p);
    }
    {
        // galgel: fluid dynamics eigenproblem; mid-length chains.
        auto p = nonVectorFpBase("178.galgel", 178);
        p.meanDepDistance = 9.0;
        p.minDepDistance = 6.0;
        p.lineStrideProb = 0.05;
        p.meanBlockSize = 18.0;
        all.push_back(p);
    }
    {
        // art: neural-net image recognition; small serial FP loops.
        auto p = nonVectorFpBase("179.art", 179);
        p.meanDepDistance = 4.0;
        p.minDepDistance = 2.0;
        p.workingSetBytes = 2ull << 20;
        p.zipfExponent = 1.3;
        p.strideFraction = 0.55;
        all.push_back(p);
    }
    {
        // ammp: molecular dynamics; divide/sqrt-heavy force loops.
        auto p = nonVectorFpBase("188.ammp", 188);
        p.wFpDiv = 0.02;
        p.wFpSqrt = 0.008;
        p.meanDepDistance = 6.0;
        p.minDepDistance = 3.0;
        p.lineStrideProb = 0.0;
        all.push_back(p);
    }
    {
        // lucas: Lucas-Lehmer primality; FFT-style FP chains.
        auto p = nonVectorFpBase("189.lucas", 189);
        p.meanDepDistance = 7.0;
        p.minDepDistance = 4.0;
        p.lineStrideProb = 0.0;
        p.strideFraction = 0.60;
        p.meanBlockSize = 16.0;
        all.push_back(p);
    }

    for (const auto &p : all)
        p.validateOrThrow();
    return all;
}

std::vector<BenchmarkProfile>
spec2000Profiles(BenchClass cls)
{
    std::vector<BenchmarkProfile> out;
    for (auto &p : spec2000Profiles()) {
        if (p.cls == cls)
            out.push_back(std::move(p));
    }
    return out;
}

BenchmarkProfile
spec2000Profile(const std::string &name)
{
    for (auto &p : spec2000Profiles()) {
        if (p.name == name ||
            p.name.substr(p.name.find('.') + 1) == name) {
            return p;
        }
    }
    throw util::ConfigError(
        util::strprintf("unknown SPEC 2000 profile '%s'", name.c_str()));
}

} // namespace fo4::trace
