/**
 * @file
 * Trace source interfaces.  The pipeline models are trace-driven: they
 * pull an infinite stream of MicroOps from a TraceSource and model the
 * timing of executing it.
 */

#ifndef FO4_TRACE_TRACE_HH
#define FO4_TRACE_TRACE_HH

#include <cstdint>
#include <vector>

#include "isa/microop.hh"
#include "util/logging.hh"

namespace fo4::trace
{

/** An infinite, restartable stream of dynamic instructions. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next dynamic instruction. */
    virtual isa::MicroOp next() = 0;

    /**
     * Restart the stream from the beginning.  A given source must
     * reproduce the identical stream after reset, so different pipeline
     * configurations can be compared on the same instructions.
     */
    virtual void reset() = 0;
};

/**
 * Observer of the retired-microop stream of a core run.  A core with a
 * sink attached calls onRetire() once per committed instruction, in
 * commit order, with the exact op it fetched for that position of the
 * stream.  Pure observability: attaching a sink must not change any
 * simulation result.  Sinks may throw (trace::Recorder turns a
 * divergence into a typed TraceError); the exception propagates out of
 * Core::run().
 */
class RetireSink
{
  public:
    virtual ~RetireSink() = default;

    virtual void onRetire(const isa::MicroOp &op) = 0;
};

/**
 * Replays a fixed vector of instructions, cycling when exhausted.  Used
 * by unit tests to drive cores with hand-built kernels.
 */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<isa::MicroOp> ops)
        : ops_(std::move(ops))
    {
        FO4_ASSERT(!ops_.empty(), "empty trace");
    }

    isa::MicroOp
    next() override
    {
        isa::MicroOp op = ops_[pos_ % ops_.size()];
        op.seq = seq_++;
        pos_++;
        return op;
    }

    void
    reset() override
    {
        pos_ = 0;
        seq_ = 0;
    }

  private:
    std::vector<isa::MicroOp> ops_;
    std::size_t pos_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace fo4::trace

#endif // FO4_TRACE_TRACE_HH
