#ifndef FO4_TRACE_RECORDER_HH
#define FO4_TRACE_RECORDER_HH

/**
 * @file
 * trace::Recorder — captures the instruction stream of a live run.
 *
 * The Recorder sits between a core and any TraceSource as a recording
 * tee: every op the core pulls is remembered, and reset() replays the
 * remembered prefix instead of resetting the inner source, so repeated
 * passes (prewarm, then the timed run) observe the identical stream a
 * plain source would produce.  Attached to the same core as a
 * RetireSink it cross-checks that every op the core *retires* is
 * field-for-field the op that was captured at that stream position —
 * a live proof that the capture really is the retired-microop stream.
 *
 * All repo sources number ops by stream position (op.seq equals the
 * pull index); the verification relies on this, because the
 * out-of-order core re-stamps seq with its own fetch counter.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/capture.hh"
#include "trace/trace.hh"

namespace fo4::trace
{

class Recorder final : public TraceSource, public RetireSink
{
  public:
    explicit Recorder(std::unique_ptr<TraceSource> inner);

    /** Replays below the high-water mark, pulls and captures above. */
    isa::MicroOp next() override;

    /**
     * Rewinds the replay cursor (and the retire check) to position 0.
     * The inner source is deliberately *not* reset: its cursor stays at
     * the high-water mark so later pulls extend the capture.
     */
    void reset() override;

    /**
     * Verifies the retired op against the capture at the next retire
     * position; throws util::TraceError(TraceCorrupt) on divergence.
     */
    void onRetire(const isa::MicroOp &op) override;

    /**
     * Extends the capture `margin` ops past the high-water mark, so a
     * replayed run whose fetch-ahead reaches slightly further than the
     * recording run still finds recorded ops.
     */
    void pad(std::uint64_t margin);

    const std::vector<isa::MicroOp> &captured() const { return ops; }

    /** Total onRetire() calls verified across all passes. */
    std::uint64_t retiredOps() const { return totalRetired; }

    /** Writes the capture atomically; see CaptureWriter. */
    void writeCapture(const std::string &path,
                      const CaptureMeta &meta = {}) const;

  private:
    std::unique_ptr<TraceSource> inner;
    std::vector<isa::MicroOp> ops;
    std::size_t pos = 0;
    std::size_t retired = 0;
    std::uint64_t totalRetired = 0;
};

} // namespace fo4::trace

#endif // FO4_TRACE_RECORDER_HH
