#include "trace/recorder.hh"

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::trace
{

namespace
{

/** isa::MicroOp has no operator==; compare every captured field. */
bool
sameOp(const isa::MicroOp &a, const isa::MicroOp &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.cls == b.cls &&
           a.src1 == b.src1 && a.src2 == b.src2 && a.dst == b.dst &&
           a.addr == b.addr && a.taken == b.taken;
}

} // namespace

Recorder::Recorder(std::unique_ptr<TraceSource> inner)
    : inner(std::move(inner))
{
    FO4_ASSERT(this->inner != nullptr, "recorder needs a source");
    this->inner->reset();
}

isa::MicroOp
Recorder::next()
{
    if (pos < ops.size())
        return ops[pos++];
    ops.push_back(inner->next());
    ++pos;
    return ops.back();
}

void
Recorder::reset()
{
    pos = 0;
    retired = 0;
}

void
Recorder::onRetire(const isa::MicroOp &op)
{
    if (retired >= ops.size()) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("recorder saw retirement %zu past the %zu "
                            "captured ops",
                            retired, ops.size()));
    }
    const isa::MicroOp &expect = ops[retired];
    if (!sameOp(op, expect)) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("recorder divergence at op %zu: retired "
                            "[%s] != captured [%s]",
                            retired, op.toString().c_str(),
                            expect.toString().c_str()));
    }
    ++retired;
    ++totalRetired;
}

void
Recorder::pad(std::uint64_t margin)
{
    ops.reserve(ops.size() + margin);
    for (std::uint64_t i = 0; i < margin; ++i)
        ops.push_back(inner->next());
}

void
Recorder::writeCapture(const std::string &path,
                       const CaptureMeta &meta) const
{
    CaptureWriter writer = CaptureWriter::create(path, meta);
    for (const isa::MicroOp &op : ops)
        writer.append(op);
    writer.close();
}

} // namespace fo4::trace
