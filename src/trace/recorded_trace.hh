#ifndef FO4_TRACE_RECORDED_TRACE_HH
#define FO4_TRACE_RECORDED_TRACE_HH

/**
 * @file
 * trace::RecordedTrace — replays a capture file as a TraceSource, and
 * openTraceFile() — the one place on-disk trace formats are sniffed.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/capture.hh"
#include "trace/trace.hh"
#include "util/status.hh"

namespace fo4::trace
{

/**
 * Replays the ops of a finalized capture, cycling when exhausted and
 * renumbering seq by stream position, exactly like FileTrace.
 *
 * Refuses unfinalized captures: readCapture() will happily salvage the
 * valid prefix of a torn file for inspection tooling, but *replaying*
 * a truncated stream would silently simulate different instructions
 * than the recorded run — the same reason FileTrace refuses stray
 * trailing bytes — so construction throws TraceError(TraceCorrupt)
 * instead.
 */
class RecordedTrace final : public TraceSource
{
  public:
    /** Loads and validates `path`; throws typed TraceErrors. */
    explicit RecordedTrace(const std::string &path);

    /** Non-throwing load used by batch drivers. */
    static util::Expected<RecordedTrace> load(const std::string &path);

    isa::MicroOp next() override;
    void reset() override;

    /** Number of distinct recorded instructions before cycling. */
    std::size_t recordedInstructions() const { return ops.size(); }

    /** The capture's key=value metadata, in file order. */
    const CaptureMeta &meta() const { return metaKv; }

    /** Value for `key`, or `fallback` when the capture lacks it. */
    std::string metaValue(const std::string &key,
                          const std::string &fallback = "") const;

  private:
    CaptureMeta metaKv;
    std::vector<isa::MicroOp> ops;
    std::size_t pos = 0;
    std::uint64_t seq = 0;
};

/**
 * Opens an on-disk trace by sniffing its magic: a capture file yields
 * a RecordedTrace, anything else is handed to FileTrace (which raises
 * the usual typed errors for non-traces).  Every consumer of trace
 * paths — runJob, the decoded-trace registry, the CLIs — goes through
 * here, so both formats work everywhere a trace path is accepted.
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path);

} // namespace fo4::trace

#endif // FO4_TRACE_RECORDED_TRACE_HH
