/**
 * @file
 * Binary trace recording and replay.  A recorded trace captures the
 * exact MicroOp stream of any TraceSource (synthetic or otherwise) so
 * experiments can be archived, diffed and replayed without the
 * generator, and external traces can be imported in the same format.
 *
 * File format: a 16-byte header ("FO4TRACE", u32 version, u32 record
 * size) followed by fixed-size little-endian records.
 */

#ifndef FO4_TRACE_FILE_TRACE_HH
#define FO4_TRACE_FILE_TRACE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/status.hh"

namespace fo4::trace
{

/**
 * Fixed-size packed instruction record: both the on-disk layout of a
 * recorded trace file (little-endian) and the in-memory layout of the
 * DecodedTrace cache, so a materialized stream is exactly what a
 * recorder would have written.
 */
struct TraceRecord
{
    std::uint64_t seq;
    std::uint64_t pc;
    std::uint64_t addr;
    std::int16_t src1;
    std::int16_t src2;
    std::int16_t dst;
    std::uint8_t cls;
    std::uint8_t taken;
};
static_assert(sizeof(TraceRecord) == 32, "trace record must be 32 bytes");

/** Pack a MicroOp into the record layout (no validation needed: a
 *  MicroOp is in range by construction). */
TraceRecord packTraceRecord(const isa::MicroOp &op);

/** Unpack a record assumed valid (e.g. produced by packTraceRecord).
 *  Records read from untrusted files are range-checked by FileTrace
 *  before they reach this layout. */
isa::MicroOp unpackTraceRecord(const TraceRecord &r);

/**
 * Write `count` instructions from a source to a trace file.  Throws
 * TraceError on I/O failure.
 */
void recordTrace(const std::string &path, TraceSource &source,
                 std::uint64_t count);

/**
 * Replays a recorded trace file, cycling (with renumbered sequence
 * numbers) when the recording is exhausted, like VectorTrace.
 *
 * A file that cannot be opened, fails format checks (magic, version,
 * record size) or carries a damaged payload (partial trailing record,
 * out-of-range op class, empty body) raises a typed TraceError instead
 * of terminating the process.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    /** Non-throwing variant for callers that prefer a Status. */
    static util::Expected<FileTrace> load(const std::string &path);

    isa::MicroOp next() override;
    void reset() override;

    std::size_t recordedInstructions() const { return ops.size(); }

  private:
    std::vector<isa::MicroOp> ops;
    std::size_t pos = 0;
    std::uint64_t seq = 0;
};

} // namespace fo4::trace

#endif // FO4_TRACE_FILE_TRACE_HH
