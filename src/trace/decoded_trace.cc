#include "trace/decoded_trace.hh"

#include "trace/generator.hh"
#include "trace/recorded_trace.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/status.hh"

namespace fo4::trace
{

DecodedTrace::DecodedTrace(std::unique_ptr<TraceSource> source,
                           std::string key)
    : name(std::move(key)), base(std::move(source)),
      chunks(std::make_unique<std::unique_ptr<TraceRecord[]>[]>(maxChunks))
{
    FO4_ASSERT(base != nullptr, "decoded trace needs a base source");
    base->reset();
}

const TraceRecord &
DecodedTrace::materialize(std::uint64_t i)
{
    std::lock_guard<std::mutex> guard(growLock);
    std::uint64_t have = produced.load(std::memory_order_relaxed);
    if (i < have)
        return chunks[i >> chunkShift][i & chunkMask];

    if ((i >> chunkShift) >= maxChunks) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("decoded trace '%s' grew past %llu records",
                            name.c_str(),
                            static_cast<unsigned long long>(
                                maxChunks << chunkShift)));
    }

    // Decode whole chunks so concurrent cells of a column rarely
    // contend: the first cell to reach a chunk pays for all of them.
    const std::uint64_t target = ((i >> chunkShift) + 1) << chunkShift;
    const std::uint64_t start = have;
    while (have < target) {
        auto &chunk = chunks[have >> chunkShift];
        if (!chunk)
            chunk = std::make_unique<TraceRecord[]>(chunkMask + 1);
        chunk[have & chunkMask] = packTraceRecord(base->next());
        ++have;
    }
    static auto &decoded =
        util::MetricsRegistry::global().counter("trace.decoded.records");
    decoded.add(have - start);
    produced.store(have, std::memory_order_release);
    return chunks[i >> chunkShift][i & chunkMask];
}

DecodedTraceRegistry &
DecodedTraceRegistry::global()
{
    static DecodedTraceRegistry registry;
    return registry;
}

std::unique_ptr<DecodedTraceView>
DecodedTraceRegistry::viewFor(
    const std::string &key,
    const std::function<std::unique_ptr<TraceSource>()> &make)
{
    static auto &hits =
        util::MetricsRegistry::global().counter("trace.decoded.hits");
    static auto &misses =
        util::MetricsRegistry::global().counter("trace.decoded.misses");
    {
        std::lock_guard<std::mutex> guard(lock);
        const auto it = traces.find(key);
        if (it != traces.end()) {
            hits.inc();
            return std::make_unique<DecodedTraceView>(it->second);
        }
    }
    // Construct outside the lock: building a source may read a file or
    // throw, and neither should stall other benchmarks' lookups.  A
    // failure propagates uncached; a racing duplicate build loses the
    // insert and is discarded.
    auto trace = std::make_shared<DecodedTrace>(make(), key);
    std::lock_guard<std::mutex> guard(lock);
    const auto [it, inserted] = traces.emplace(key, std::move(trace));
    if (inserted)
        misses.inc();
    else
        hits.inc();
    return std::make_unique<DecodedTraceView>(it->second);
}

std::unique_ptr<DecodedTraceView>
DecodedTraceRegistry::viewForProfile(const BenchmarkProfile &profile)
{
    return viewFor("profile:" + profile.identityKey(), [&profile] {
        return std::unique_ptr<TraceSource>(
            std::make_unique<SyntheticTraceGenerator>(profile));
    });
}

std::unique_ptr<DecodedTraceView>
DecodedTraceRegistry::viewForFile(const std::string &path)
{
    // openTraceFile sniffs the format, so capture files and flat v1
    // trace files both replay through the decoded registry.
    return viewFor("file:" + path,
                   [&path] { return openTraceFile(path); });
}

std::size_t
DecodedTraceRegistry::size() const
{
    std::lock_guard<std::mutex> guard(lock);
    return traces.size();
}

void
DecodedTraceRegistry::clear()
{
    std::lock_guard<std::mutex> guard(lock);
    traces.clear();
}

} // namespace fo4::trace
