#include "trace/capture.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "trace/trace_codec.hh"
#include "util/journal.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::trace
{

namespace
{

constexpr char kMagic[8] = {'F', 'O', '4', 'C', 'A', 'P', 'T', 'R'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kFrameHeadBytes = 8; // u32 len | u32 crc

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
    putU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           static_cast<std::uint64_t>(getU32(p + 4)) << 32;
}

/**
 * Header layout (mirrors the journal):
 *   [0, 8)   magic "FO4CAPTR"
 *   [8, 12)  format version
 *   [12, 16) flags (zero)
 *   [16, 24) reserved (zero)
 *   [24, 28) CRC32 of bytes [0, 24)
 *   [28, 32) reserved (zero)
 */
void
encodeHeader(unsigned char *h)
{
    std::memset(h, 0, kHeaderBytes);
    std::memcpy(h, kMagic, sizeof(kMagic));
    putU32(h + 8, kCaptureVersion);
    putU32(h + 24, util::crc32(h, 24));
}

[[noreturn]] void
throwIo(const std::string &path, const char *what)
{
    throw util::TraceError(
        util::ErrorCode::TraceIo,
        util::strprintf("%s capture file '%s': %s", what, path.c_str(),
                        std::strerror(errno)));
}

[[noreturn]] void
throwCorrupt(const std::string &message)
{
    throw util::TraceError(util::ErrorCode::TraceCorrupt, message);
}

struct FdCloser
{
    int fd;
    ~FdCloser()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

std::vector<unsigned char>
readWholeFile(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throwIo(path, "cannot open");
    FdCloser closer{fd};

    std::vector<unsigned char> data;
    unsigned char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwIo(path, "cannot read");
        }
        if (n == 0)
            break;
        data.insert(data.end(), buf, buf + n);
    }
    return data;
}

std::string
serializeMeta(const CaptureMeta &meta)
{
    std::string text;
    for (const auto &[key, value] : meta) {
        if (key.empty() || key.find('=') != std::string::npos ||
            key.find('\n') != std::string::npos) {
            throw util::ConfigError(util::strprintf(
                "capture meta key '%s' must be non-empty and free of "
                "'=' and newlines",
                key.c_str()));
        }
        if (value.find('\n') != std::string::npos) {
            throw util::ConfigError(util::strprintf(
                "capture meta value for '%s' must not contain newlines",
                key.c_str()));
        }
        text += key;
        text += '=';
        text += value;
        text += '\n';
    }
    return text;
}

void
parseMeta(const unsigned char *body, std::size_t size,
          const std::string &path, CaptureMeta &meta)
{
    std::size_t lineStart = 0;
    for (std::size_t i = 0; i <= size; ++i) {
        if (i < size && body[i] != '\n')
            continue;
        if (i == size && lineStart == size)
            break; // text ended cleanly on a newline
        const std::string line(reinterpret_cast<const char *>(body) +
                                   lineStart,
                               i - lineStart);
        const std::size_t eq = line.find('=');
        if (i == size || eq == std::string::npos || eq == 0) {
            throwCorrupt(util::strprintf(
                "capture '%s': malformed meta frame line '%s'",
                path.c_str(), line.c_str()));
        }
        meta.emplace_back(line.substr(0, eq), line.substr(eq + 1));
        lineStart = i + 1;
    }
}

} // namespace

bool
isCaptureFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    char m[sizeof(kMagic)];
    const bool got = std::fread(m, sizeof(m), 1, f) == 1;
    std::fclose(f);
    return got && std::memcmp(m, kMagic, sizeof(kMagic)) == 0;
}

CaptureContents
readCapture(const std::string &path)
{
    const std::vector<unsigned char> data = readWholeFile(path);

    // Header ladder: size, magic, version, then CRC.  Version is
    // checked before the CRC so genuine version skew (a file from a
    // newer build) reports TraceFormat, not bit rot.
    if (data.size() < kHeaderBytes) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("capture '%s' is truncated: %zu bytes, "
                            "shorter than the %zu-byte header",
                            path.c_str(), data.size(), kHeaderBytes));
    }
    if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("'%s' is not a fo4pipe capture file",
                            path.c_str()));
    }
    const std::uint32_t version = getU32(data.data() + 8);
    if (version != kCaptureVersion) {
        throw util::TraceError(
            util::ErrorCode::TraceFormat,
            util::strprintf("capture '%s' has unsupported version %u "
                            "(this build speaks %u)",
                            path.c_str(), version, kCaptureVersion));
    }
    const std::uint32_t storedCrc = getU32(data.data() + 24);
    const std::uint32_t computedCrc = util::crc32(data.data(), 24);
    if (storedCrc != computedCrc) {
        throwCorrupt(util::strprintf(
            "capture '%s': header CRC mismatch (stored %08x, computed "
            "%08x)",
            path.c_str(), storedCrc, computedCrc));
    }

    CaptureContents out;
    std::size_t offset = kHeaderBytes;
    std::size_t frame = 0;
    while (offset < data.size()) {
        const std::size_t remaining = data.size() - offset;
        if (remaining < kFrameHeadBytes) {
            out.tornTail = true;
            break;
        }
        const std::uint32_t len = getU32(data.data() + offset);
        // Length plausibility comes before the torn-tail comparison: a
        // rotted length field must not be misread as "tail cut short".
        if (len == 0 || len > kMaxCaptureFrame) {
            throwCorrupt(util::strprintf(
                "capture '%s': frame %zu declares %u payload bytes, "
                "outside (0, %u] — refused before allocation",
                path.c_str(), frame, len, kMaxCaptureFrame));
        }
        if (remaining - kFrameHeadBytes < len) {
            out.tornTail = true;
            break;
        }
        const unsigned char *payload = data.data() + offset +
                                       kFrameHeadBytes;
        const std::uint32_t stored = getU32(data.data() + offset + 4);
        const std::uint32_t computed = util::crc32(payload, len);
        if (stored != computed) {
            throwCorrupt(util::strprintf(
                "capture '%s': frame %zu CRC mismatch at offset %zu "
                "(stored %08x, computed %08x)",
                path.c_str(), frame, offset, stored, computed));
        }
        if (out.finalized) {
            throwCorrupt(util::strprintf(
                "capture '%s': frame %zu follows the end frame",
                path.c_str(), frame));
        }
        const char kind = static_cast<char>(payload[0]);
        const unsigned char *body = payload + 1;
        const std::size_t bodyLen = len - 1;
        switch (kind) {
        case 'M':
            parseMeta(body, bodyLen, path, out.meta);
            break;
        case 'O':
            appendCheckedRecords(body, bodyLen, path, out.ops);
            break;
        case 'E': {
            if (bodyLen != 8) {
                throwCorrupt(util::strprintf(
                    "capture '%s': malformed end frame (%zu body "
                    "bytes, expected 8)",
                    path.c_str(), bodyLen));
            }
            const std::uint64_t declared = getU64(body);
            if (declared != out.ops.size()) {
                throwCorrupt(util::strprintf(
                    "capture '%s': end frame declares %llu records "
                    "but %zu were read",
                    path.c_str(),
                    static_cast<unsigned long long>(declared),
                    out.ops.size()));
            }
            out.finalized = true;
            break;
        }
        default:
            throwCorrupt(util::strprintf(
                "capture '%s': unknown frame kind 0x%02x in frame %zu",
                path.c_str(), static_cast<unsigned>(payload[0]), frame));
        }
        offset += kFrameHeadBytes + len;
        ++frame;
    }
    return out;
}

CaptureWriter
CaptureWriter::create(const std::string &path, const CaptureMeta &meta,
                      std::size_t opsPerFrame)
{
    if (opsPerFrame == 0)
        throw util::ConfigError("capture opsPerFrame must be positive");
    const std::string metaText = serializeMeta(meta); // validate first

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0)
        throwIo(path, "cannot create");

    CaptureWriter w(fd, path, tmp, opsPerFrame);
    unsigned char header[kHeaderBytes];
    encodeHeader(header);
    const util::Status st = util::writeAllStatus(fd, header,
                                                 sizeof(header), tmp);
    if (!st.isOk()) {
        w.abandon();
        throw util::TraceError(util::ErrorCode::TraceIo, st.message());
    }
    w.writeFrame('M', metaText.data(), metaText.size());
    return w;
}

CaptureWriter::CaptureWriter(int fd, std::string finalPath,
                             std::string tmp, std::size_t opsPerFrame)
    : fd(fd), path(std::move(finalPath)), tmpPath(std::move(tmp)),
      opsPerFrame(opsPerFrame)
{
}

CaptureWriter::CaptureWriter(CaptureWriter &&other) noexcept
    : fd(other.fd), path(std::move(other.path)),
      tmpPath(std::move(other.tmpPath)), opsPerFrame(other.opsPerFrame),
      pending(std::move(other.pending)), count(other.count)
{
    other.fd = -1;
}

CaptureWriter &
CaptureWriter::operator=(CaptureWriter &&other) noexcept
{
    if (this != &other) {
        abandon();
        fd = other.fd;
        path = std::move(other.path);
        tmpPath = std::move(other.tmpPath);
        opsPerFrame = other.opsPerFrame;
        pending = std::move(other.pending);
        count = other.count;
        other.fd = -1;
    }
    return *this;
}

CaptureWriter::~CaptureWriter()
{
    abandon();
}

void
CaptureWriter::abandon() noexcept
{
    if (fd < 0)
        return;
    ::close(fd);
    fd = -1;
    ::unlink(tmpPath.c_str());
}

void
CaptureWriter::writeFrame(char kind, const void *body, std::size_t size)
{
    const std::uint32_t len = static_cast<std::uint32_t>(size) + 1;
    std::vector<unsigned char> frame(kFrameHeadBytes + len);
    frame[kFrameHeadBytes] = static_cast<unsigned char>(kind);
    if (size != 0)
        std::memcpy(frame.data() + kFrameHeadBytes + 1, body, size);
    putU32(frame.data(), len);
    putU32(frame.data() + 4,
           util::crc32(frame.data() + kFrameHeadBytes, len));
    const util::Status st = util::writeAllStatus(fd, frame.data(),
                                                 frame.size(), tmpPath);
    if (!st.isOk()) {
        abandon();
        throw util::TraceError(util::ErrorCode::TraceIo, st.message());
    }
}

void
CaptureWriter::flushOps()
{
    if (pending.empty())
        return;
    writeFrame('O', pending.data(), pending.size());
    pending.clear();
}

void
CaptureWriter::append(const isa::MicroOp &op)
{
    if (fd < 0)
        throw util::ConfigError("append to a closed capture writer");
    const std::size_t tail = pending.size();
    pending.resize(tail + sizeof(TraceRecord));
    encodeTraceRecord(packTraceRecord(op), pending.data() + tail);
    ++count;
    if (pending.size() >= opsPerFrame * sizeof(TraceRecord))
        flushOps();
}

void
CaptureWriter::close()
{
    if (fd < 0)
        throw util::ConfigError("capture writer already closed");
    if (count == 0) {
        abandon();
        throw util::ConfigError("recording an empty trace");
    }
    flushOps();
    unsigned char body[8];
    putU64(body, count);
    writeFrame('E', body, sizeof(body));

    if (::fsync(fd) != 0) {
        const int err = errno;
        abandon();
        errno = err;
        throwIo(path, "cannot fsync");
    }
    ::close(fd);
    fd = -1;
    if (::rename(tmpPath.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmpPath.c_str());
        errno = err;
        throwIo(path, "cannot publish");
    }
    try {
        util::fsyncParentDirectory(path);
    } catch (const util::SimError &e) {
        throw util::TraceError(util::ErrorCode::TraceIo,
                               e.toStatus().message());
    }
}

} // namespace fo4::trace
