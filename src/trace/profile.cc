#include "trace/profile.hh"

#include "util/logging.hh"

namespace fo4::trace
{

const char *
benchClassName(BenchClass cls)
{
    switch (cls) {
      case BenchClass::Integer:
        return "integer";
      case BenchClass::VectorFp:
        return "vector-fp";
      case BenchClass::NonVectorFp:
        return "non-vector-fp";
    }
    return "?";
}

void
BenchmarkProfile::validate() const
{
    FO4_ASSERT(!name.empty(), "profile has no name");
    const double mix = wIntAlu + wIntMult + wFpAdd + wFpMult + wFpDiv +
                       wFpSqrt + wLoad + wStore;
    FO4_ASSERT(mix > 0.0, "profile '%s' has an empty op mix", name.c_str());
    FO4_ASSERT(meanDepDistance >= 1.0,
               "profile '%s': dependence distance below 1", name.c_str());
    FO4_ASSERT(meanBlockSize >= 1.0, "profile '%s': block size below 1",
               name.c_str());
    FO4_ASSERT(staticBranches >= 1, "profile '%s': no static branches",
               name.c_str());
    FO4_ASSERT(src2Prob >= 0.0 && src2Prob <= 1.0,
               "profile '%s': src2Prob out of range", name.c_str());
    FO4_ASSERT(strideFraction >= 0.0 && strideFraction <= 1.0,
               "profile '%s': strideFraction out of range", name.c_str());
    FO4_ASSERT(biasedBranchFraction + patternBranchFraction +
                       correlatedBranchFraction <=
                   1.0 + 1e-9,
               "profile '%s': branch fractions exceed 1", name.c_str());
    FO4_ASSERT(workingSetBytes >= 64, "profile '%s': working set too small",
               name.c_str());
}

} // namespace fo4::trace
