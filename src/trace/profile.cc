#include "trace/profile.hh"

#include "util/status.hh"

namespace fo4::trace
{

const char *
benchClassName(BenchClass cls)
{
    switch (cls) {
      case BenchClass::Integer:
        return "integer";
      case BenchClass::VectorFp:
        return "vector-fp";
      case BenchClass::NonVectorFp:
        return "non-vector-fp";
    }
    return "?";
}

util::Status
BenchmarkProfile::validate() const
{
    util::ErrorCollector errs;
    if (name.empty())
        errs.addf("profile has no name");
    const double mix = wIntAlu + wIntMult + wFpAdd + wFpMult + wFpDiv +
                       wFpSqrt + wLoad + wStore;
    if (mix <= 0.0)
        errs.addf("empty op mix (weights sum to %g)", mix);
    if (meanDepDistance < 1.0)
        errs.addf("meanDepDistance %g below 1", meanDepDistance);
    if (meanBlockSize < 1.0)
        errs.addf("meanBlockSize %g below 1", meanBlockSize);
    if (staticBranches < 1)
        errs.addf("staticBranches %d below 1", staticBranches);
    if (src2Prob < 0.0 || src2Prob > 1.0)
        errs.addf("src2Prob %g outside [0, 1]", src2Prob);
    if (strideFraction < 0.0 || strideFraction > 1.0)
        errs.addf("strideFraction %g outside [0, 1]", strideFraction);
    if (biasedBranchFraction + patternBranchFraction +
            correlatedBranchFraction >
        1.0 + 1e-9) {
        errs.addf("branch fractions sum to %g, above 1",
                  biasedBranchFraction + patternBranchFraction +
                      correlatedBranchFraction);
    }
    if (workingSetBytes < 64) {
        errs.addf("working set of %llu bytes is smaller than one cache "
                  "line",
                  static_cast<unsigned long long>(workingSetBytes));
    }
    return errs.status(util::ErrorCode::InvalidConfig);
}

std::string
BenchmarkProfile::identityKey() const
{
    std::string key;
    // Length-prefix the name so no choice of name can collide with the
    // rendering of another profile's fields.
    key += util::strprintf("%zu:%s|%d|", name.size(), name.c_str(),
                           static_cast<int>(cls));
    for (const double d :
         {wIntAlu, wIntMult, wFpAdd, wFpMult, wFpDiv, wFpSqrt, wLoad,
          wStore, meanDepDistance, minDepDistance, src2Prob,
          fpSourceAffinity, fpLoadFraction, meanBlockSize,
          biasedBranchFraction, strongBias, patternBranchFraction,
          correlatedBranchFraction, takenBiasFraction, branchDepDistance,
          strideFraction, lineStrideProb, zipfExponent})
        key += util::strprintf("%a|", d);
    key += util::strprintf("%d|%llu|%d|%llu", staticBranches,
                           static_cast<unsigned long long>(workingSetBytes),
                           strideStreams,
                           static_cast<unsigned long long>(seed));
    return key;
}

void
BenchmarkProfile::validateOrThrow() const
{
    if (const auto st = validate(); !st.isOk()) {
        throw util::ConfigError(
            util::strprintf("profile '%s': %s", name.c_str(),
                            st.message().c_str()));
    }
}

} // namespace fo4::trace
