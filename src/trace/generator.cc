#include "trace/generator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace fo4::trace
{

namespace
{

/** Ring capacity; sampled producer distances are capped below this so a
 *  rotating destination pool of 64 registers per class never aliases. */
constexpr std::size_t ringSize = 48;
constexpr int intRegPool = 64;  // r0..r63
constexpr int fpRegPool = 64;   // f0..f63 stored as 64..127

/** Geometric sample with the given mean, minimum 1. */
std::uint64_t
sampleDistance(util::Rng &rng, double mean)
{
    if (mean <= 1.0)
        return 1;
    const double p = 1.0 / mean;
    const std::uint64_t d = 1 + rng.geometric(p);
    return std::min<std::uint64_t>(d, ringSize - 1);
}

} // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const BenchmarkProfile &profile)
    : prof(profile), rng(profile.seed)
{
    prof.validateOrThrow();
    rebuild();
}

void
SyntheticTraceGenerator::rebuild()
{
    rng = util::Rng(prof.seed);

    opMix = std::make_unique<util::DiscreteSampler>(std::vector<double>{
        prof.wIntAlu, prof.wIntMult, prof.wFpAdd, prof.wFpMult, prof.wFpDiv,
        prof.wFpSqrt, prof.wLoad, prof.wStore});
    branchZipf = std::make_unique<util::ZipfSampler>(
        static_cast<std::size_t>(prof.staticBranches), 0.9);

    const std::size_t lines = std::max<std::uint64_t>(
        1, prof.workingSetBytes / 64);
    memZipf = std::make_unique<util::ZipfSampler>(lines, prof.zipfExponent);

    // Static branch population: biased, then pattern, then hard branches.
    // Sites are spaced one instruction apart so predictor tables index
    // them distinctly (pc >> 2), as distinct static branches would.
    branches.clear();
    for (int i = 0; i < prof.staticBranches; ++i) {
        StaticBranch b;
        b.pc = 0x400000 + static_cast<std::uint64_t>(i) * 4;
        b.target = 0x1000 + rng.below(1 << 16) * 4;
        b.patternPeriod = 0;
        b.patternPhase = 0;
        b.correlated = false;
        const double u = rng.uniform();
        if (u < prof.biasedBranchFraction) {
            // Mostly loop back-edges: biased toward taken.
            b.takenBias = rng.chance(prof.takenBiasFraction)
                              ? prof.strongBias
                              : 1.0 - prof.strongBias;
        } else if (u < prof.biasedBranchFraction +
                           prof.patternBranchFraction) {
            b.patternPeriod = static_cast<int>(2 + rng.below(4)); // 2..5
            b.takenBias = 0.5;
        } else if (u < prof.biasedBranchFraction +
                           prof.patternBranchFraction +
                           prof.correlatedBranchFraction) {
            b.correlated = true;
            b.takenBias = 0.5;
        } else {
            b.takenBias = 0.35 + 0.3 * rng.uniform(); // hard branch
        }
        branches.push_back(b);
    }

    // Stride streams: predominantly element-sized strides (several
    // accesses per cache line, as array sweeps produce), occasionally a
    // line-sized stride (row-major walks of 2D data).
    streams.clear();
    for (int i = 0; i < std::max(1, prof.strideStreams); ++i) {
        StrideStream s;
        // Far-apart bases staggered by a few KB so concurrent streams do
        // not march through the same cache sets in lockstep.
        s.base = 0x10000000 + static_cast<std::uint64_t>(i) * (64ull << 20) +
                 static_cast<std::uint64_t>(i) * 8192;
        s.stride = rng.chance(prof.lineStrideProb) ? 64 : 8;
        s.count = 0;
        streams.push_back(s);
    }
    nextStream = 0;

    // Seed the producer rings so early consumers have something to read.
    intRing.assign(ringSize, 0);
    fpRing.assign(ringSize, 64);
    for (std::size_t i = 0; i < ringSize; ++i) {
        intRing[i] = static_cast<std::int16_t>(i % intRegPool);
        fpRing[i] = static_cast<std::int16_t>(64 + i % fpRegPool);
    }
    intRingPos = 0;
    fpRingPos = 0;
    nextIntReg = 0;
    nextFpReg = 0;
    outcomeHistory = 0;

    seq = 0;
    pc = 0x1000;
    blockRemaining = static_cast<int>(
        std::max<std::uint64_t>(1, sampleDistance(rng, prof.meanBlockSize)));
}

void
SyntheticTraceGenerator::reset()
{
    rebuild();
}

std::int16_t
SyntheticTraceGenerator::pickSource(bool fpPreferred, double meanDistance)
{
    const bool useFp = fpPreferred && rng.chance(prof.fpSourceAffinity);
    const auto &ring = useFp ? fpRing : intRing;
    const std::size_t pos = useFp ? fpRingPos : intRingPos;

    // Shifted geometric: at least minDepDistance, with the profile's
    // overall mean.
    const double minDist = std::max(1.0, prof.minDepDistance);
    const double extraMean = std::max(1.0, meanDistance - minDist + 1.0);
    std::uint64_t dist = static_cast<std::uint64_t>(minDist) - 1 +
                         sampleDistance(rng, extraMean);
    if (dist > ringSize - 1)
        dist = ringSize - 1;
    const std::size_t idx = (pos + ringSize - dist) % ringSize;
    return ring[idx];
}

std::uint64_t
SyntheticTraceGenerator::nextAddress()
{
    if (rng.chance(prof.strideFraction)) {
        StrideStream &s = streams[nextStream];
        nextStream = (nextStream + 1) % streams.size();
        const std::uint64_t a = s.base + s.count * s.stride;
        ++s.count;
        // The streams collectively cover the profile's footprint: each
        // wraps after its share of the working set.
        const std::uint64_t share =
            std::max<std::uint64_t>(4096,
                                    prof.workingSetBytes / streams.size());
        if (s.count * s.stride >= share)
            s.count = 0;
        return a;
    }
    const std::uint64_t line = memZipf->sample(rng);
    return 0x20000000 + line * 64 + rng.below(8) * 8;
}

isa::MicroOp
SyntheticTraceGenerator::makeBranch()
{
    StaticBranch &b = branches[branchZipf->sample(rng)];

    isa::MicroOp op;
    op.seq = seq++;
    op.pc = b.pc;
    op.cls = isa::OpClass::Branch;
    op.src1 = pickSource(false, prof.branchDepDistance);

    if (b.patternPeriod > 0) {
        // Loop-style pattern: taken for period-1 executions, then one
        // not-taken, repeating.
        op.taken = b.patternPhase != b.patternPeriod - 1;
        b.patternPhase = (b.patternPhase + 1) % b.patternPeriod;
    } else if (b.correlated) {
        // Outcome follows the parity of the last four branch outcomes
        // (with a little noise): invisible to per-branch predictors but
        // learnable from global history.
        const bool parity =
            __builtin_popcountll(outcomeHistory & 0xF) & 1;
        op.taken = parity != rng.chance(0.05);
    } else {
        op.taken = rng.chance(b.takenBias);
    }
    op.addr = b.target;
    outcomeHistory = (outcomeHistory << 1) | (op.taken ? 1 : 0);

    pc = op.taken ? b.target : b.pc + 4;
    blockRemaining = static_cast<int>(std::max<std::uint64_t>(
        1, sampleDistance(rng, prof.meanBlockSize)));
    return op;
}

isa::MicroOp
SyntheticTraceGenerator::makeOp(isa::OpClass cls)
{
    isa::MicroOp op;
    op.seq = seq++;
    op.pc = pc;
    pc += 4;
    op.cls = cls;

    const bool fp = isa::isFloat(cls);
    switch (cls) {
      case isa::OpClass::Load: {
        op.src1 = pickSource(false, prof.meanDepDistance); // address reg
        op.addr = nextAddress();
        const bool fpDst = rng.chance(prof.fpLoadFraction);
        if (fpDst) {
            op.dst = static_cast<std::int16_t>(64 + nextFpReg);
            nextFpReg = (nextFpReg + 1) % fpRegPool;
            fpRingPos = (fpRingPos + 1) % ringSize;
            fpRing[fpRingPos] = op.dst;
        } else {
            op.dst = static_cast<std::int16_t>(nextIntReg);
            nextIntReg = (nextIntReg + 1) % intRegPool;
            intRingPos = (intRingPos + 1) % ringSize;
            intRing[intRingPos] = op.dst;
        }
        return op;
      }
      case isa::OpClass::Store: {
        const bool fpData = rng.chance(prof.fpLoadFraction);
        op.src1 = pickSource(fpData, prof.meanDepDistance); // data
        op.src2 = pickSource(false, prof.meanDepDistance);  // address
        op.addr = nextAddress();
        return op;
      }
      default:
        break;
    }

    // Register-register operation.
    op.src1 = pickSource(fp, prof.meanDepDistance);
    if (rng.chance(prof.src2Prob))
        op.src2 = pickSource(fp, prof.meanDepDistance);

    if (fp) {
        op.dst = static_cast<std::int16_t>(64 + nextFpReg);
        nextFpReg = (nextFpReg + 1) % fpRegPool;
        fpRingPos = (fpRingPos + 1) % ringSize;
        fpRing[fpRingPos] = op.dst;
    } else {
        op.dst = static_cast<std::int16_t>(nextIntReg);
        nextIntReg = (nextIntReg + 1) % intRegPool;
        intRingPos = (intRingPos + 1) % ringSize;
        intRing[intRingPos] = op.dst;
    }
    return op;
}

isa::MicroOp
SyntheticTraceGenerator::next()
{
    if (blockRemaining <= 0)
        return makeBranch();
    --blockRemaining;

    static const isa::OpClass classes[] = {
        isa::OpClass::IntAlu, isa::OpClass::IntMult, isa::OpClass::FpAdd,
        isa::OpClass::FpMult, isa::OpClass::FpDiv, isa::OpClass::FpSqrt,
        isa::OpClass::Load, isa::OpClass::Store};
    return makeOp(classes[opMix->sample(rng)]);
}

} // namespace fo4::trace
