#include "trace/recorded_trace.hh"

#include "trace/file_trace.hh"
#include "util/logging.hh"

namespace fo4::trace
{

RecordedTrace::RecordedTrace(const std::string &path)
{
    CaptureContents contents = readCapture(path);
    if (!contents.finalized) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("capture '%s' was never finalized (%s "
                            "after %zu salvageable records); replaying "
                            "a truncated stream would diverge from the "
                            "recorded run — re-record it",
                            path.c_str(),
                            contents.tornTail ? "torn tail"
                                              : "missing end frame",
                            contents.ops.size()));
    }
    if (contents.ops.empty()) {
        throw util::TraceError(
            util::ErrorCode::TraceCorrupt,
            util::strprintf("trace file '%s' contains no instructions",
                            path.c_str()));
    }
    metaKv = std::move(contents.meta);
    ops = std::move(contents.ops);
}

util::Expected<RecordedTrace>
RecordedTrace::load(const std::string &path)
{
    try {
        return RecordedTrace(path);
    } catch (const util::SimError &e) {
        return e.toStatus();
    }
}

isa::MicroOp
RecordedTrace::next()
{
    isa::MicroOp op = ops[pos];
    pos = (pos + 1) % ops.size();
    op.seq = seq++;
    return op;
}

void
RecordedTrace::reset()
{
    pos = 0;
    seq = 0;
}

std::string
RecordedTrace::metaValue(const std::string &key,
                         const std::string &fallback) const
{
    for (const auto &[k, v] : metaKv) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    if (isCaptureFile(path))
        return std::make_unique<RecordedTrace>(path);
    return std::make_unique<FileTrace>(path);
}

} // namespace fo4::trace
