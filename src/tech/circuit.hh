/**
 * @file
 * A small switch-level transient circuit simulator.
 *
 * This is the repo's substitute for the SPICE runs in the paper: MOSFETs
 * use the textbook long-channel quadratic model (cutoff / triode /
 * saturation), node voltages are integrated with forward Euler, and all
 * delays are reported relative to a measured FO4 reference (see fo4.hh),
 * which is how the paper normalizes its circuit results too.
 *
 * Units: volts, picoseconds, femtofarads, milliamps (so dV = I*dt/C holds
 * with no conversion factors).
 */

#ifndef FO4_TECH_CIRCUIT_HH
#define FO4_TECH_CIRCUIT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fo4::tech
{

/** Device and supply parameters for a technology node. */
struct DeviceParams
{
    double vdd = 1.2;       ///< supply voltage (V)
    double vtn = 0.3;       ///< NMOS threshold (V)
    double vtp = 0.3;       ///< PMOS threshold magnitude (V)
    double kn = 1.2;        ///< NMOS transconductance (mA/V^2 per um width)
    double kp = 0.6;        ///< PMOS transconductance (mA/V^2 per um width)
    double cGate = 1.5;     ///< gate capacitance (fF per um width)
    double cDiff = 0.8;     ///< source/drain diffusion cap (fF per um width)
    double invWn = 1.0;     ///< reference inverter NMOS width (um)
    double invWp = 2.0;     ///< reference inverter PMOS width (um)

    /** Parameters representative of a 100nm bulk CMOS process. */
    static DeviceParams at100nm() { return DeviceParams{}; }
};

/** A voltage waveform for a driven node: maps time (ps) to volts. */
using Waveform = std::function<double(double)>;

/** Linear-ramp step from v0 to v1 starting at t0, taking trise ps. */
Waveform rampStep(double t0, double v0, double v1, double trise);

/** A 50%-duty-cycle clock: high for half of period, starting high at t0. */
Waveform clockWave(double t0, double period, double vdd, double trise);

/**
 * A transient-simulated transistor network.  Build the netlist with
 * addNode/addNmos/addPmos/drive, then run(); voltage crossings of vdd/2 are
 * recorded for every node during simulation.
 */
class Circuit
{
  public:
    using NodeId = std::int32_t;

    explicit Circuit(const DeviceParams &params);

    /** The positive supply rail. */
    NodeId vdd() const { return vddNode; }
    /** The ground rail. */
    NodeId gnd() const { return gndNode; }

    /** Create a floating node with optional extra load capacitance (fF). */
    NodeId addNode(const std::string &name, double extraCapFf = 0.0);

    /** Add explicit capacitance to ground on a node (fF). */
    void addCap(NodeId node, double capFf);

    /** Add an NMOS device; width in um. */
    void addNmos(NodeId gate, NodeId a, NodeId b, double width);

    /** Add a PMOS device; width in um. */
    void addPmos(NodeId gate, NodeId a, NodeId b, double width);

    /** Force a node to follow a waveform (ideal voltage source). */
    void drive(NodeId node, Waveform wave);

    /** Set the initial voltage of a free node (defaults to 0 V). */
    void setInitial(NodeId node, double volts);

    /**
     * Integrate the network from t=0 to tEnd with step dt (both ps).
     * May be called once per circuit.
     */
    void run(double tEnd, double dt = 0.1);

    /** Final voltage of a node after run(). */
    double voltage(NodeId node) const;

    /** All times (ps) the node crossed vdd/2, with direction. */
    struct Crossing
    {
        double time;
        bool rising;
    };
    const std::vector<Crossing> &crossings(NodeId node) const;

    /**
     * First crossing of vdd/2 at or after tMin in the given direction, or
     * a negative value if none occurred.
     */
    double firstCrossing(NodeId node, bool rising, double tMin = 0.0) const;

    const DeviceParams &params() const { return prm; }
    std::size_t deviceCount() const { return fets.size(); }
    std::size_t nodeCount() const { return caps.size(); }

  private:
    struct Fet
    {
        bool isPmos;
        NodeId gate;
        NodeId a;
        NodeId b;
        double width;
    };

    double fetCurrent(const Fet &fet) const;

    DeviceParams prm;
    NodeId vddNode;
    NodeId gndNode;
    std::vector<std::string> names;
    std::vector<double> caps;       // fF per node
    std::vector<double> volts;      // current voltages
    std::vector<double> initial;    // initial conditions
    std::vector<Fet> fets;
    std::vector<std::pair<NodeId, Waveform>> sources;
    std::vector<std::vector<Crossing>> xings;
    bool ran = false;
};

} // namespace fo4::tech

#endif // FO4_TECH_CIRCUIT_HH
