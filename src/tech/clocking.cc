#include "tech/clocking.hh"

#include <cmath>

#include "util/logging.hh"

namespace fo4::tech
{

OverheadModel
OverheadModel::fromKurdMeasurements(Technology measuredAt, double latchFo4)
{
    // Kurd et al. (ISSCC 2001), Pentium 4 clock distribution: skew below
    // 20 ps and jitter 35 ps with multiple clock domains at 180nm.
    const double skewPs = 20.0;
    const double jitterPs = 35.0;
    auto round1 = [](double v) { return std::round(v * 10.0) / 10.0; };
    OverheadModel m;
    m.latchFo4 = latchFo4;
    m.skewFo4 = round1(measuredAt.toFo4(skewPs));
    m.jitterFo4 = round1(measuredAt.toFo4(jitterPs));
    return m;
}

int
ClockModel::latencyCycles(double latencyFo4) const
{
    FO4_ASSERT(tUsefulFo4 > 0.0, "t_useful must be positive");
    FO4_ASSERT(latencyFo4 >= 0.0, "negative latency");
    const int cycles = static_cast<int>(std::ceil(latencyFo4 / tUsefulFo4));
    return cycles < 1 ? 1 : cycles;
}

} // namespace fo4::tech
