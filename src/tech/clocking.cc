#include "tech/clocking.hh"

#include <cmath>

#include "util/logging.hh"

namespace fo4::tech
{

OverheadModel
OverheadModel::fromKurdMeasurements(Technology measuredAt, double latchFo4)
{
    // Kurd et al. (ISSCC 2001), Pentium 4 clock distribution: skew below
    // 20 ps and jitter 35 ps with multiple clock domains at 180nm.
    const double skewPs = 20.0;
    const double jitterPs = 35.0;
    auto round1 = [](double v) { return std::round(v * 10.0) / 10.0; };
    OverheadModel m;
    m.latchFo4 = latchFo4;
    m.skewFo4 = round1(measuredAt.toFo4(skewPs));
    m.jitterFo4 = round1(measuredAt.toFo4(jitterPs));
    return m;
}

OverheadModel
OverheadModel::validated(double latchFo4, double skewFo4, double jitterFo4)
{
    util::ErrorCollector errs;
    const struct
    {
        const char *name;
        double value;
    } parts[] = {{"latch", latchFo4}, {"skew", skewFo4},
                 {"jitter", jitterFo4}};
    for (const auto &part : parts) {
        if (!std::isfinite(part.value))
            errs.addf("%s overhead must be finite (got %g)", part.name,
                      part.value);
        else if (part.value < 0.0)
            errs.addf("%s overhead cannot be negative (got %g FO4)",
                      part.name, part.value);
    }
    const util::Status st = errs.status(util::ErrorCode::InvalidConfig);
    if (!st.isOk())
        throw util::ConfigError(st.message());
    return OverheadModel{latchFo4, skewFo4, jitterFo4};
}

util::Status
ClockModel::validate() const
{
    util::ErrorCollector errs;
    if (!(tUsefulFo4 > 0.0))
        errs.addf("t_useful %.2f FO4 must be positive", tUsefulFo4);
    if (overhead.latchFo4 < 0.0 || overhead.skewFo4 < 0.0 ||
        overhead.jitterFo4 < 0.0) {
        errs.addf("overheads cannot be negative (latch %.2f, skew %.2f, "
                  "jitter %.2f FO4)",
                  overhead.latchFo4, overhead.skewFo4, overhead.jitterFo4);
    }
    if (!(tech.drawnGateLengthNm > 0.0)) {
        errs.addf("drawn gate length %.1f nm must be positive",
                  tech.drawnGateLengthNm);
    }
    return errs.status(util::ErrorCode::InvalidConfig);
}

int
ClockModel::latencyCycles(double latencyFo4) const
{
    FO4_ASSERT(tUsefulFo4 > 0.0, "t_useful must be positive");
    FO4_ASSERT(latencyFo4 >= 0.0, "negative latency");
    const int cycles = static_cast<int>(std::ceil(latencyFo4 / tUsefulFo4));
    return cycles < 1 ? 1 : cycles;
}

} // namespace fo4::tech
