/**
 * @file
 * Appendix A of the paper: the CMOS equivalent of one Cray-1S ECL gate
 * level (a 4-input NAND driving a 5-input NAND, the second standing in
 * for the transmission-line wire delay) and the resulting conversion of
 * Kunkel & Smith's optimal gate levels per stage into FO4.
 */

#ifndef FO4_TECH_ECL_HH
#define FO4_TECH_ECL_HH

#include "tech/circuit.hh"
#include "tech/fo4.hh"

namespace fo4::tech
{

/** The paper's measured value for one ECL gate level in FO4. */
constexpr double paperEclLevelFo4 = 1.36;

/** Kunkel & Smith optimal useful gate levels per stage (Cray-1S study). */
constexpr int kunkelSmithScalarLevels = 8;
constexpr int kunkelSmithVectorLevels = 4;

/**
 * Measure the delay of the Appendix A test circuit (4-NAND into 5-NAND)
 * by transient simulation, normalized to FO4.
 */
double measureEclLevelFo4(const DeviceParams &params, const Fo4Reference &ref);

/** Convert a number of ECL gate levels to FO4 using a per-level delay. */
double eclLevelsToFo4(int levels, double fo4PerLevel = paperEclLevelFo4);

} // namespace fo4::tech

#endif // FO4_TECH_ECL_HH
