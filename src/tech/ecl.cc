#include "tech/ecl.hh"

#include "tech/gates.hh"
#include "util/logging.hh"

namespace fo4::tech
{

double
measureEclLevelFo4(const DeviceParams &params, const Fo4Reference &ref)
{
    Circuit c(params);

    // Shape the input edge with two inverters so the NAND sees a
    // realistic slope, as in the FO4 reference measurement.  Step late so
    // initialization transients have settled.
    const double stepAt = 400.0;
    const auto in = c.addNode("in");
    c.drive(in, rampStep(stepAt, 0.0, params.vdd, 30.0));
    const auto shaped = addInverterChain(c, in, 2);

    // One active input per NAND; the others are tied to Vdd so the gate
    // switches on the measured edge.  The 5-input NAND stands in for the
    // Cray transmission-line wire, whose fanout loading the paper argues
    // can largely be ignored, so it is sized small to present a light
    // load to the logic gate.
    const auto nand4 = addNand(
        c, {shaped, c.vdd(), c.vdd(), c.vdd()});
    const auto nand5 = addNand(
        c, {nand4, c.vdd(), c.vdd(), c.vdd(), c.vdd()}, 0.4);

    // Light downstream load, standing in for the next gate level.
    addFanoutLoad(c, nand5, 1);

    c.run(stepAt + 1500.0, 0.05);

    // shaped rises -> nand4 falls -> nand5 rises.
    const double settle = stepAt - 100.0;
    const double tIn = c.firstCrossing(shaped, true, settle);
    const double tOut = c.firstCrossing(nand5, true, settle);
    FO4_ASSERT(tIn > 0 && tOut > tIn,
               "ECL equivalence circuit did not propagate");
    return ref.toFo4(tOut - tIn);
}

double
eclLevelsToFo4(int levels, double fo4PerLevel)
{
    FO4_ASSERT(levels > 0, "gate levels must be positive");
    return levels * fo4PerLevel;
}

} // namespace fo4::tech
