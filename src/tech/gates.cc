#include "tech/gates.hh"

#include "util/logging.hh"

namespace fo4::tech
{

Circuit::NodeId
addInverter(Circuit &c, Circuit::NodeId in, double scale)
{
    const auto &p = c.params();
    const auto out = c.addNode("inv.out");
    c.addPmos(in, c.vdd(), out, p.invWp * scale);
    c.addNmos(in, out, c.gnd(), p.invWn * scale);
    return out;
}

Circuit::NodeId
addNand(Circuit &c, const std::vector<Circuit::NodeId> &ins, double scale)
{
    FO4_ASSERT(!ins.empty(), "NAND needs at least one input");
    const auto &p = c.params();
    const auto out = c.addNode("nand.out");

    // Parallel PMOS pull-ups.
    for (auto in : ins)
        c.addPmos(in, c.vdd(), out, p.invWp * scale);

    // Series NMOS stack, upsized by the stack depth.
    const double wn = p.invWn * scale * static_cast<double>(ins.size());
    Circuit::NodeId lower = c.gnd();
    for (std::size_t i = 0; i < ins.size(); ++i) {
        const bool last = (i + 1 == ins.size());
        const auto upper = last ? out : c.addNode("nand.stack");
        c.addNmos(ins[i], upper, lower, wn);
        lower = upper;
    }
    return out;
}

void
addTransmissionGate(Circuit &c, Circuit::NodeId a, Circuit::NodeId b,
                    Circuit::NodeId ctl, Circuit::NodeId ctlBar, double scale)
{
    const auto &p = c.params();
    c.addNmos(ctl, a, b, p.invWn * scale);
    c.addPmos(ctlBar, a, b, p.invWp * scale);
}

Circuit::NodeId
addInverterChain(Circuit &c, Circuit::NodeId in, int length, double scale)
{
    FO4_ASSERT(length >= 1, "chain length must be >= 1");
    Circuit::NodeId node = in;
    for (int i = 0; i < length; ++i)
        node = addInverter(c, node, scale);
    return node;
}

void
addFanoutLoad(Circuit &c, Circuit::NodeId node, int count)
{
    const auto &p = c.params();
    c.addCap(node, count * p.cGate * (p.invWn + p.invWp));
}

PulseLatchNodes
addPulseLatch(Circuit &c, Circuit::NodeId d, Circuit::NodeId clk, double scale)
{
    PulseLatchNodes nodes;
    nodes.d = d;
    nodes.clk = clk;
    nodes.clkBar = addInverter(c, clk, scale);
    nodes.x = c.addNode("latch.x");

    // Forward path: transmission gate on while the clock is high.
    addTransmissionGate(c, d, nodes.x, clk, nodes.clkBar, scale);

    // Output inverters.
    nodes.qBar = addInverter(c, nodes.x, scale);
    nodes.q = addInverter(c, nodes.qBar, scale);

    // Feedback: a weak inverter from Qb back onto X through a transmission
    // gate that is on while the clock is low, completing the keeper loop
    // exactly when the forward gate opens.
    const auto fb = addInverter(c, nodes.qBar, 0.4 * scale);
    addTransmissionGate(c, fb, nodes.x, nodes.clkBar, clk, 0.4 * scale);

    return nodes;
}

} // namespace fo4::tech
