/**
 * @file
 * The FO4 metric: technology scaling rules and the simulated FO4 reference
 * measurement that normalizes every other circuit result.
 *
 * Following the paper, 1 FO4 is the delay of an inverter driving four
 * copies of itself, and corresponds to roughly 360 ps times the drawn gate
 * length in microns (Ho, Mai & Horowitz), so delays expressed in FO4 are
 * technology independent.
 */

#ifndef FO4_TECH_FO4_HH
#define FO4_TECH_FO4_HH

#include "tech/circuit.hh"

namespace fo4::tech
{

/** Picoseconds per FO4 per micron of drawn gate length. */
constexpr double fo4PsPerMicron = 360.0;

/**
 * Clock period of the Alpha 21264 (800 MHz at 180nm) in FO4, as used by
 * the paper to back out functional-unit latencies (Table 3, last row).
 */
constexpr double alpha21264PeriodFo4 = 17.4;

/** A CMOS technology node identified by its drawn gate length. */
struct Technology
{
    double drawnGateLengthNm;

    /** Rule-of-thumb FO4 delay at this node (ps). */
    double fo4Ps() const { return fo4PsPerMicron * drawnGateLengthNm / 1e3; }

    /** Convert a delay in FO4 to picoseconds at this node. */
    double toPs(double fo4) const { return fo4 * fo4Ps(); }

    /** Convert a delay in picoseconds at this node to FO4. */
    double toFo4(double ps) const { return ps / fo4Ps(); }

    /** Clock frequency (GHz) for a period expressed in FO4. */
    double frequencyGhz(double periodFo4) const
    {
        return 1e3 / toPs(periodFo4);
    }

    static Technology nm(double drawn) { return Technology{drawn}; }
};

/** The 100nm node the paper's experiments target (1 FO4 = 36 ps). */
inline Technology
tech100nm()
{
    return Technology::nm(100.0);
}

/**
 * Result of the simulated FO4 reference measurement.  `delayPs` is in the
 * circuit simulator's time units; dividing any other simulated delay by it
 * yields a technology-independent FO4 figure.
 */
struct Fo4Reference
{
    double delayPs;     ///< average of rising and falling FO4 delay
    double risePs;      ///< low-to-high propagation
    double fallPs;      ///< high-to-low propagation

    double toFo4(double ps) const { return ps / delayPs; }
};

/**
 * Measure the FO4 delay of the reference inverter by transient simulation
 * of a five-stage fanout-of-four inverter chain (each internal node loaded
 * to a total fanout of four), averaging a falling and a rising transition
 * through the middle stages.
 */
Fo4Reference measureFo4(const DeviceParams &params);

} // namespace fo4::tech

#endif // FO4_TECH_FO4_HH
