/**
 * @file
 * Gate-level netlist builders on top of the switch-level Circuit: static
 * CMOS inverters and NANDs, transmission gates, buffer chains, and the
 * pulse latch from Figure 2 of the paper.
 */

#ifndef FO4_TECH_GATES_HH
#define FO4_TECH_GATES_HH

#include <vector>

#include "tech/circuit.hh"

namespace fo4::tech
{

/**
 * Add a static CMOS inverter.  Widths default to the technology's
 * reference inverter; `scale` multiplies both.
 * @return the output node.
 */
Circuit::NodeId addInverter(Circuit &c, Circuit::NodeId in, double scale = 1.0);

/**
 * Add an N-input static CMOS NAND.  NMOS stack widths are upsized by the
 * stack depth so the pull-down strength matches the reference inverter.
 * @return the output node.
 */
Circuit::NodeId addNand(Circuit &c, const std::vector<Circuit::NodeId> &ins,
                        double scale = 1.0);

/**
 * Add a CMOS transmission gate between a and b, on when ctl is high
 * (ctlBar must carry the complement).
 */
void addTransmissionGate(Circuit &c, Circuit::NodeId a, Circuit::NodeId b,
                         Circuit::NodeId ctl, Circuit::NodeId ctlBar,
                         double scale = 1.0);

/**
 * Add a chain of `length` inverters after `in`.
 * @return the final output node.
 */
Circuit::NodeId addInverterChain(Circuit &c, Circuit::NodeId in, int length,
                                 double scale = 1.0);

/** Load the node with `count` reference-inverter gate inputs. */
void addFanoutLoad(Circuit &c, Circuit::NodeId node, int count);

/** Handles to the nodes of one pulse latch (paper Figure 2a). */
struct PulseLatchNodes
{
    Circuit::NodeId d;      ///< data input
    Circuit::NodeId clk;    ///< clock
    Circuit::NodeId clkBar; ///< complement clock (generated internally)
    Circuit::NodeId x;      ///< internal storage node
    Circuit::NodeId q;      ///< output
    Circuit::NodeId qBar;   ///< complement output (feedback tap)
};

/**
 * Add a pulse latch: transmission gate from D to storage node X, inverter
 * X->Qb, inverter Qb->Q, and a clock-gated feedback path that closes when
 * the clock is low, holding the value (paper Figure 2a).
 *
 * @param c       circuit under construction
 * @param d       data input node
 * @param clk     clock node (complement generated with a local inverter)
 * @param scale   device sizing multiplier
 */
PulseLatchNodes addPulseLatch(Circuit &c, Circuit::NodeId d,
                              Circuit::NodeId clk, double scale = 1.0);

} // namespace fo4::tech

#endif // FO4_TECH_GATES_HH
