#include "tech/fo4.hh"

#include "tech/gates.hh"
#include "util/logging.hh"

namespace fo4::tech
{

Fo4Reference
measureFo4(const DeviceParams &params)
{
    Circuit c(params);

    // Five inverters in series; every internal node carries three extra
    // inverter-input loads so each stage sees a fanout of four.  The input
    // steps well after t=0 so initialization transients (every node starts
    // at 0 V) have settled before the measured edge.
    const double stepAt = 400.0;
    const auto in = c.addNode("in");
    c.drive(in, rampStep(stepAt, 0.0, params.vdd, 30.0));

    std::vector<Circuit::NodeId> taps;
    Circuit::NodeId node = in;
    for (int stage = 0; stage < 5; ++stage) {
        node = addInverter(c, node);
        addFanoutLoad(c, node, 3);
        taps.push_back(node);
    }

    c.run(stepAt + 1500.0, 0.05);

    // Input rises: tap0 falls, tap1 rises, tap2 falls, tap3 rises.
    // Measure stage 3 (falling output) and stage 4 (rising output), deep
    // enough in the chain that the edges are self-consistent.
    const double settle = stepAt - 100.0;
    const double t2_rise = c.firstCrossing(taps[1], true, settle);
    const double t3_fall = c.firstCrossing(taps[2], false, settle);
    const double t4_rise = c.firstCrossing(taps[3], true, settle);
    FO4_ASSERT(t2_rise > 0 && t3_fall > t2_rise && t4_rise > t3_fall,
               "FO4 reference chain did not propagate (%.2f %.2f %.2f)",
               t2_rise, t3_fall, t4_rise);

    Fo4Reference ref;
    ref.fallPs = t3_fall - t2_rise;
    ref.risePs = t4_rise - t3_fall;
    ref.delayPs = 0.5 * (ref.fallPs + ref.risePs);
    return ref;
}

} // namespace fo4::tech
