#include "tech/latch.hh"

#include <cmath>

#include "tech/gates.hh"
#include "util/logging.hh"

namespace fo4::tech
{

LatchTrial
runLatchTrial(const DeviceParams &params, double dSourceTime,
              double clockPeriod)
{
    Circuit c(params);

    // Raw sources.  The clock starts high at t=0 and falls at period/2;
    // the data source is a simple step as in the paper.
    const auto clkSrc = c.addNode("clk.src");
    c.drive(clkSrc, clockWave(0.0, clockPeriod, params.vdd, 15.0));
    const auto dSrc = c.addNode("d.src");
    c.drive(dSrc, rampStep(dSourceTime, 0.0, params.vdd, 15.0));

    // Both signals travel through six buffering inverters (Figure 3).
    const auto clk = addInverterChain(c, clkSrc, 6);
    const auto d = addInverterChain(c, dSrc, 6);

    // Device under test, driving a second latch whose gate is held open.
    const auto latch = addPulseLatch(c, d, clk);
    addPulseLatch(c, latch.q, c.vdd());

    // Stop before the next rising clock edge: a late data value must not
    // be credited as captured just because the transparent phase of the
    // following cycle picks it up.
    c.run(0.95 * clockPeriod, 0.1);

    // Ignore crossings during circuit settling (all nodes start at 0 V,
    // so the inverter chains glitch while they initialize).
    const double settle = 0.25 * clockPeriod;
    LatchTrial trial;
    trial.dArrival = c.firstCrossing(d, true, settle);
    trial.clkFall = c.firstCrossing(clk, false, settle);
    const double qRise = c.firstCrossing(latch.q, true, settle);

    // Captured iff Q is solidly high once the clock has been low a while.
    trial.captured =
        qRise > 0 && c.voltage(latch.q) > 0.9 * params.vdd &&
        c.voltage(latch.x) > 0.9 * params.vdd;
    trial.tdq = trial.captured ? qRise - trial.dArrival : 0.0;
    return trial;
}

LatchTiming
measureLatchTiming(const DeviceParams &params, const Fo4Reference &ref)
{
    // A generously long clock so the early data edge is far from the
    // falling edge: period/2 of slack.
    const double period = 40.0 * ref.delayPs;
    const double fall = period / 2.0;

    // Nominal D-Q: data arrives long before the falling edge.
    const LatchTrial nominal =
        runLatchTrial(params, fall - 8.0 * ref.delayPs, period);
    FO4_ASSERT(nominal.captured, "latch failed with ample setup margin");

    // Sweep the source edge toward (and past) the clock edge in fine
    // steps; record the smallest successful D-Q delay and the last
    // successful arrival time.
    const double step = ref.delayPs / 32.0;
    double minTdq = nominal.tdq;
    double lastGoodArrival = nominal.dArrival;
    double clkFall = nominal.clkFall;
    bool sawFailure = false;

    for (double src = fall - 3.0 * ref.delayPs;
         src < fall + 4.0 * ref.delayPs; src += step) {
        const LatchTrial trial = runLatchTrial(params, src, period);
        clkFall = trial.clkFall;
        if (trial.captured) {
            if (trial.tdq < minTdq)
                minTdq = trial.tdq;
            lastGoodArrival = trial.dArrival;
        } else {
            sawFailure = true;
            break;
        }
    }
    FO4_ASSERT(sawFailure,
               "latch never failed: sweep window too small or keeper broken");

    LatchTiming timing;
    timing.overheadPs = minTdq;
    timing.nominalTdqPs = nominal.tdq;
    timing.setupPs = lastGoodArrival - clkFall;
    timing.overheadFo4 = ref.toFo4(minTdq);
    return timing;
}

} // namespace fo4::tech
