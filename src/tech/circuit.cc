#include "tech/circuit.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace fo4::tech
{

Waveform
rampStep(double t0, double v0, double v1, double trise)
{
    return [=](double t) {
        if (t <= t0)
            return v0;
        if (t >= t0 + trise)
            return v1;
        return v0 + (v1 - v0) * (t - t0) / trise;
    };
}

Waveform
clockWave(double t0, double period, double vdd, double trise)
{
    const double half = period / 2.0;
    return [=](double t) {
        if (t < t0)
            return 0.0;
        const double phase = std::fmod(t - t0, period);
        if (phase < half - trise)
            return vdd;
        if (phase < half)
            return vdd * (half - phase) / trise;
        if (phase < period - trise)
            return 0.0;
        return vdd * (phase - (period - trise)) / trise;
    };
}

Circuit::Circuit(const DeviceParams &params)
    : prm(params)
{
    vddNode = addNode("vdd");
    gndNode = addNode("gnd");
    drive(vddNode, [this](double) { return prm.vdd; });
    drive(gndNode, [](double) { return 0.0; });
}

Circuit::NodeId
Circuit::addNode(const std::string &name, double extraCapFf)
{
    names.push_back(name);
    caps.push_back(extraCapFf);
    volts.push_back(0.0);
    initial.push_back(0.0);
    xings.emplace_back();
    return static_cast<NodeId>(names.size() - 1);
}

void
Circuit::addCap(NodeId node, double capFf)
{
    FO4_ASSERT(node >= 0 && node < static_cast<NodeId>(caps.size()),
               "bad node id %d", node);
    caps[node] += capFf;
}

void
Circuit::addNmos(NodeId gate, NodeId a, NodeId b, double width)
{
    FO4_ASSERT(width > 0.0, "transistor width must be positive");
    fets.push_back({false, gate, a, b, width});
    addCap(gate, prm.cGate * width);
    addCap(a, prm.cDiff * width);
    addCap(b, prm.cDiff * width);
}

void
Circuit::addPmos(NodeId gate, NodeId a, NodeId b, double width)
{
    FO4_ASSERT(width > 0.0, "transistor width must be positive");
    fets.push_back({true, gate, a, b, width});
    addCap(gate, prm.cGate * width);
    addCap(a, prm.cDiff * width);
    addCap(b, prm.cDiff * width);
}

void
Circuit::drive(NodeId node, Waveform wave)
{
    sources.emplace_back(node, std::move(wave));
}

void
Circuit::setInitial(NodeId node, double voltsInit)
{
    initial[node] = voltsInit;
}

double
Circuit::fetCurrent(const Fet &fet) const
{
    // Returns current flowing from terminal a into terminal b (mA), using
    // the long-channel quadratic model with symmetric source/drain.
    const double va = volts[fet.a];
    const double vb = volts[fet.b];
    const double vg = volts[fet.gate];

    if (!fet.isPmos) {
        // Source is the lower-voltage terminal.
        const double vs = std::min(va, vb);
        const double vd = std::max(va, vb);
        const double vov = (vg - vs) - prm.vtn;
        if (vov <= 0.0)
            return 0.0;
        const double vds = vd - vs;
        const double k = prm.kn * fet.width;
        const double i = vds < vov
            ? k * (vov * vds - 0.5 * vds * vds)
            : 0.5 * k * vov * vov;
        // Current flows from drain (higher) to source (lower).
        return va > vb ? i : -i;
    }
    // PMOS: source is the higher-voltage terminal.
    const double vs = std::max(va, vb);
    const double vd = std::min(va, vb);
    const double vov = (vs - vg) - prm.vtp;
    if (vov <= 0.0)
        return 0.0;
    const double vsd = vs - vd;
    const double k = prm.kp * fet.width;
    const double i = vsd < vov
        ? k * (vov * vsd - 0.5 * vsd * vsd)
        : 0.5 * k * vov * vov;
    // Current flows from source (higher) to drain (lower).
    return va > vb ? i : -i;
}

void
Circuit::run(double tEnd, double dt)
{
    FO4_ASSERT(!ran, "Circuit::run() may only be called once");
    FO4_ASSERT(dt > 0.0 && tEnd > 0.0, "invalid run parameters");
    ran = true;

    const std::size_t n = volts.size();
    std::vector<bool> isDriven(n, false);
    for (const auto &[node, wave] : sources)
        isDriven[node] = true;

    for (std::size_t i = 0; i < n; ++i) {
        volts[i] = initial[i];
        if (!isDriven[i] && fets.empty() && caps[i] <= 0.0)
            caps[i] = 1.0; // isolated test nodes: give a token capacitance
    }
    for (const auto &[node, wave] : sources)
        volts[node] = wave(0.0);

    std::vector<double> currents(n);
    std::vector<double> prev(volts);
    const double mid = prm.vdd / 2.0;

    for (double t = dt; t <= tEnd + 1e-12; t += dt) {
        std::fill(currents.begin(), currents.end(), 0.0);
        for (const auto &fet : fets) {
            const double i_ab = fetCurrent(fet);
            currents[fet.a] -= i_ab;
            currents[fet.b] += i_ab;
        }

        prev = volts;
        for (std::size_t i = 0; i < n; ++i) {
            if (isDriven[i])
                continue;
            const double c = caps[i];
            if (c <= 0.0)
                continue; // node with no cap and no devices: leave at init
            double v = volts[i] + currents[i] * dt / c;
            v = std::clamp(v, -0.2, prm.vdd + 0.2);
            volts[i] = v;
        }
        for (const auto &[node, wave] : sources)
            volts[node] = wave(t);

        for (std::size_t i = 0; i < n; ++i) {
            const bool was_low = prev[i] < mid;
            const bool is_low = volts[i] < mid;
            if (was_low != is_low) {
                // Linear interpolation inside the step.
                const double frac = (mid - prev[i]) / (volts[i] - prev[i]);
                xings[i].push_back({t - dt + frac * dt, was_low});
            }
        }
    }
}

double
Circuit::voltage(NodeId node) const
{
    FO4_ASSERT(ran, "voltage() before run()");
    return volts[node];
}

const std::vector<Circuit::Crossing> &
Circuit::crossings(NodeId node) const
{
    FO4_ASSERT(ran, "crossings() before run()");
    return xings[node];
}

double
Circuit::firstCrossing(NodeId node, bool rising, double tMin) const
{
    for (const auto &x : crossings(node)) {
        if (x.rising == rising && x.time >= tMin)
            return x.time;
    }
    return -1.0;
}

} // namespace fo4::tech
