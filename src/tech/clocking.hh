/**
 * @file
 * The clock-period model from Section 2 of the paper:
 *
 *     T = t_useful + t_overhead,
 *     t_overhead = t_latch + t_skew + t_jitter,
 *
 * with the paper's values of 1.0 / 0.3 / 0.5 FO4 (Table 1).  Skew and
 * jitter come from Kurd et al.'s multi-domain clocking measurements at
 * 180nm (20 ps skew, 35 ps jitter) converted to FO4, and are assumed to
 * scale linearly with technology, so they are constants in FO4.
 */

#ifndef FO4_TECH_CLOCKING_HH
#define FO4_TECH_CLOCKING_HH

#include "tech/fo4.hh"
#include "util/status.hh"

namespace fo4::tech
{

/** Per-stage clocking overheads, all in FO4. */
struct OverheadModel
{
    double latchFo4 = 1.0;
    double skewFo4 = 0.3;
    double jitterFo4 = 0.5;

    double totalFo4() const { return latchFo4 + skewFo4 + jitterFo4; }

    /** The paper's Table 1 values (1.0 + 0.3 + 0.5 = 1.8 FO4). */
    static OverheadModel paperDefault() { return OverheadModel{}; }

    /** A uniform total with unspecified decomposition (Fig 6 sweeps). */
    static OverheadModel
    uniform(double totalFo4)
    {
        return OverheadModel{totalFo4, 0.0, 0.0};
    }

    /**
     * Validated constructor for *computed* overheads — Monte Carlo
     * sampled draws, user-supplied decompositions — where a negative or
     * non-finite component is a real possibility.  Rejects such values
     * with a typed ConfigError naming every bad component at once,
     * rather than clamping them silently: a clamped draw would corrupt
     * the sampled distribution and still fingerprint as legitimate.
     */
    static OverheadModel validated(double latchFo4, double skewFo4,
                                   double jitterFo4);

    /**
     * Skew and jitter derived from Kurd et al.'s absolute numbers at a
     * given measurement node, rounded to one decimal as in the paper.
     */
    static OverheadModel fromKurdMeasurements(Technology measuredAt,
                                              double latchFo4 = 1.0);
};

/** A clock: useful logic depth plus overhead, at a technology node. */
struct ClockModel
{
    Technology tech = tech100nm();
    double tUsefulFo4 = 6.0;
    OverheadModel overhead = OverheadModel::paperDefault();

    double periodFo4() const { return tUsefulFo4 + overhead.totalFo4(); }
    double periodPs() const { return tech.toPs(periodFo4()); }
    double frequencyGhz() const { return tech.frequencyGhz(periodFo4()); }

    /**
     * Pipeline cycles needed for a piece of logic with the given latency
     * (in FO4): ceil(latency / t_useful), minimum one cycle.  Matches the
     * paper's quantization of Table 3.
     */
    int latencyCycles(double latencyFo4) const;

    /** BIPS for a given IPC at this clock. */
    double bips(double ipc) const { return ipc * frequencyGhz(); }

    /** Check every range rule, reporting all violations at once. */
    util::Status validate() const;
};

} // namespace fo4::tech

#endif // FO4_TECH_CLOCKING_HH
