/**
 * @file
 * Pulse-latch timing extraction (paper Section 2).
 *
 * Reproduces the Stojanović & Oklobdžija methodology the paper uses: the
 * latch input data edge is moved progressively closer to the falling clock
 * edge; the D-to-Q delay grows as the edge approaches and eventually the
 * latch fails to capture.  The latch overhead is the smallest D-Q delay
 * observed before the point of failure.
 */

#ifndef FO4_TECH_LATCH_HH
#define FO4_TECH_LATCH_HH

#include "tech/circuit.hh"
#include "tech/fo4.hh"

namespace fo4::tech
{

/** Result of one trial of the latch test circuit (paper Figure 3). */
struct LatchTrial
{
    bool captured;      ///< latch held the new value after the clock fell
    double dArrival;    ///< time D crossed 50% at the latch input (ps)
    double clkFall;     ///< time the buffered clock fell at the latch (ps)
    double tdq;         ///< D-to-Q delay (ps); valid only when captured
};

/** Extracted latch timing parameters. */
struct LatchTiming
{
    double overheadPs;      ///< min successful D-Q delay (latch overhead)
    double nominalTdqPs;    ///< D-Q delay with D far from the clock edge
    double setupPs;         ///< last working D arrival relative to clk fall
                            ///< (negative = D arrived before the edge)
    double overheadFo4;     ///< overhead normalized to the FO4 reference
};

/**
 * Run one trial of the Figure 3 test circuit: clock and data buffered by
 * six inverters, pulse latch whose output drives a second, transparent
 * pulse latch as load.
 *
 * @param params      device parameters
 * @param dSourceTime time the raw data source steps high (ps)
 * @param clockPeriod clock period at the source (ps)
 */
LatchTrial runLatchTrial(const DeviceParams &params, double dSourceTime,
                         double clockPeriod);

/**
 * Sweep the data edge toward the falling clock edge and extract latch
 * timing.  `ref` supplies the FO4 normalization.
 */
LatchTiming measureLatchTiming(const DeviceParams &params,
                               const Fo4Reference &ref);

} // namespace fo4::tech

#endif // FO4_TECH_LATCH_HH
