/**
 * @file
 * Concrete branch predictors: always-taken, perfect, bimodal, gshare,
 * local-history, and the Alpha 21264-style tournament predictor the
 * scaled machine uses.
 */

#ifndef FO4_BP_PREDICTORS_HH
#define FO4_BP_PREDICTORS_HH

#include <memory>
#include <vector>

#include "bp/predictor.hh"
#include "util/sat_counter.hh"

namespace fo4::bp
{

/** Predicts every branch taken.  Baseline / test double. */
class AlwaysTaken : public BranchPredictor
{
  public:
    bool predict(const isa::MicroOp &) override { return true; }
    void update(const isa::MicroOp &, bool) override {}
    void reset() override {}
    const char *name() const override { return "always-taken"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<AlwaysTaken>(*this);
    }
};

/** Oracle: always correct.  Used to isolate non-branch effects. */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool predict(const isa::MicroOp &op) override { return op.taken; }
    void update(const isa::MicroOp &, bool) override {}
    void reset() override {}
    const char *name() const override { return "perfect"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<PerfectPredictor>(*this);
    }
};

/** Classic bimodal table of 2-bit counters indexed by PC. */
class Bimodal : public BranchPredictor
{
  public:
    explicit Bimodal(std::size_t entries = 4096);

    bool predict(const isa::MicroOp &op) override;
    void update(const isa::MicroOp &op, bool taken) override;
    void reset() override;
    const char *name() const override { return "bimodal"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<Bimodal>(*this);
    }

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<util::SatCounter<2>> table;
};

/** Gshare: global history XOR PC indexes a table of 2-bit counters. */
class GShare : public BranchPredictor
{
  public:
    explicit GShare(std::size_t entries = 4096, int historyBits = 12);

    bool predict(const isa::MicroOp &op) override;
    void update(const isa::MicroOp &op, bool taken) override;
    void reset() override;
    const char *name() const override { return "gshare"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<GShare>(*this);
    }

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<util::SatCounter<2>> table;
    std::uint64_t history = 0;
    std::uint64_t historyMask;
};

/** Per-branch local-history predictor (21264 local half). */
class LocalHistory : public BranchPredictor
{
  public:
    LocalHistory(std::size_t historyEntries = 1024, int historyBits = 10,
                 std::size_t counterEntries = 1024);

    bool predict(const isa::MicroOp &op) override;
    void update(const isa::MicroOp &op, bool taken) override;
    void reset() override;
    const char *name() const override { return "local"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<LocalHistory>(*this);
    }

  private:
    std::vector<std::uint16_t> histories;
    std::vector<util::SatCounter<3>> counters;
    std::uint64_t historyMask;
};

/**
 * Alpha 21264-style tournament predictor: a local-history predictor and
 * a global-history predictor arbitrated by a choice table indexed by
 * global history.
 */
class Tournament : public BranchPredictor
{
  public:
    Tournament();

    bool predict(const isa::MicroOp &op) override;
    void update(const isa::MicroOp &op, bool taken) override;
    void reset() override;
    const char *name() const override { return "tournament"; }
    std::unique_ptr<BranchPredictor> clone() const override
    {
        return std::make_unique<Tournament>(*this);
    }

  private:
    LocalHistory local;
    std::vector<util::SatCounter<2>> global;
    std::vector<util::SatCounter<2>> choice;
    std::uint64_t history = 0;
    static constexpr std::uint64_t historyMask = 0xfff; // 12 bits
};

/** Factory by name: "perfect", "taken", "bimodal", "gshare", "local",
 *  "tournament".  Fatal on unknown names. */
std::unique_ptr<BranchPredictor> makePredictor(const std::string &name);

} // namespace fo4::bp

#endif // FO4_BP_PREDICTORS_HH
