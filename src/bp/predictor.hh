/**
 * @file
 * Branch predictor interface.  The cores are trace-driven, so predictors
 * are consulted at fetch and trained immediately with the known outcome;
 * the misprediction cost is modelled by the pipeline (fetch redirect after
 * branch resolution).
 */

#ifndef FO4_BP_PREDICTOR_HH
#define FO4_BP_PREDICTOR_HH

#include <cstdint>
#include <memory>

#include "isa/microop.hh"

namespace fo4::bp
{

/** Direction predictor for conditional branches. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /**
     * Predict the direction of a branch.  Implementations normally use
     * only op.pc; the full op is passed so the perfect predictor can
     * peek at the outcome.
     */
    virtual bool predict(const isa::MicroOp &op) = 0;

    /** Train with the actual outcome. */
    virtual void update(const isa::MicroOp &op, bool taken) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    /**
     * Deep copy, training state included.  Lets a warm-state cache
     * train a predictor prototype once per sweep column and hand each
     * cell its own copy (every concrete predictor is a plain value
     * type, so the copy is exact).
     */
    virtual std::unique_ptr<BranchPredictor> clone() const = 0;

    virtual const char *name() const = 0;
};

} // namespace fo4::bp

#endif // FO4_BP_PREDICTOR_HH
