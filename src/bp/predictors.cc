#include "bp/predictors.hh"

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::bp
{

namespace
{

bool
isPowerOfTwo(std::size_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

Bimodal::Bimodal(std::size_t entries)
    : table(entries)
{
    FO4_ASSERT(isPowerOfTwo(entries), "table size must be a power of two");
}

std::size_t
Bimodal::index(std::uint64_t pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

bool
Bimodal::predict(const isa::MicroOp &op)
{
    return table[index(op.pc)].predictTaken();
}

void
Bimodal::update(const isa::MicroOp &op, bool taken)
{
    table[index(op.pc)].train(taken);
}

void
Bimodal::reset()
{
    std::fill(table.begin(), table.end(), util::SatCounter<2>());
}

GShare::GShare(std::size_t entries, int historyBits)
    : table(entries), historyMask((1ull << historyBits) - 1)
{
    FO4_ASSERT(isPowerOfTwo(entries), "table size must be a power of two");
    FO4_ASSERT(historyBits >= 1 && historyBits <= 24, "bad history length");
}

std::size_t
GShare::index(std::uint64_t pc) const
{
    return ((pc >> 2) ^ history) & (table.size() - 1);
}

bool
GShare::predict(const isa::MicroOp &op)
{
    return table[index(op.pc)].predictTaken();
}

void
GShare::update(const isa::MicroOp &op, bool taken)
{
    table[index(op.pc)].train(taken);
    history = ((history << 1) | (taken ? 1 : 0)) & historyMask;
}

void
GShare::reset()
{
    std::fill(table.begin(), table.end(), util::SatCounter<2>());
    history = 0;
}

LocalHistory::LocalHistory(std::size_t historyEntries, int historyBits,
                           std::size_t counterEntries)
    : histories(historyEntries, 0), counters(counterEntries),
      historyMask((1ull << historyBits) - 1)
{
    FO4_ASSERT(isPowerOfTwo(historyEntries) && isPowerOfTwo(counterEntries),
               "table sizes must be powers of two");
    FO4_ASSERT((1ull << historyBits) >= counterEntries ||
                   historyBits <= 16,
               "history cannot index the counter table");
}

bool
LocalHistory::predict(const isa::MicroOp &op)
{
    const std::size_t hIdx = (op.pc >> 2) & (histories.size() - 1);
    const std::size_t cIdx = histories[hIdx] & (counters.size() - 1);
    return counters[cIdx].predictTaken();
}

void
LocalHistory::update(const isa::MicroOp &op, bool taken)
{
    const std::size_t hIdx = (op.pc >> 2) & (histories.size() - 1);
    const std::size_t cIdx = histories[hIdx] & (counters.size() - 1);
    counters[cIdx].train(taken);
    histories[hIdx] = static_cast<std::uint16_t>(
        ((histories[hIdx] << 1) | (taken ? 1 : 0)) & historyMask);
}

void
LocalHistory::reset()
{
    std::fill(histories.begin(), histories.end(), 0);
    std::fill(counters.begin(), counters.end(), util::SatCounter<3>());
}

Tournament::Tournament()
    : local(1024, 10, 1024), global(4096), choice(4096)
{
}

bool
Tournament::predict(const isa::MicroOp &op)
{
    const bool localPred = local.predict(op);
    const bool globalPred =
        global[((op.pc >> 2) ^ history) & historyMask].predictTaken();
    const bool useGlobal = choice[(op.pc >> 2) & historyMask].predictTaken();
    return useGlobal ? globalPred : localPred;
}

void
Tournament::update(const isa::MicroOp &op, bool taken)
{
    const bool localPred = local.predict(op);
    const bool globalPred =
        global[((op.pc >> 2) ^ history) & historyMask].predictTaken();

    // Train the chooser only when the two components disagree.  The
    // chooser is indexed by PC so each static branch settles on its
    // better component.
    if (localPred != globalPred)
        choice[(op.pc >> 2) & historyMask].train(globalPred == taken);

    global[((op.pc >> 2) ^ history) & historyMask].train(taken);
    local.update(op, taken);
    history = (history << 1) | (taken ? 1 : 0);
}

void
Tournament::reset()
{
    local.reset();
    std::fill(global.begin(), global.end(), util::SatCounter<2>());
    std::fill(choice.begin(), choice.end(), util::SatCounter<2>());
    history = 0;
}

std::unique_ptr<BranchPredictor>
makePredictor(const std::string &name)
{
    if (name == "perfect")
        return std::make_unique<PerfectPredictor>();
    if (name == "taken")
        return std::make_unique<AlwaysTaken>();
    if (name == "bimodal")
        return std::make_unique<Bimodal>();
    if (name == "gshare")
        return std::make_unique<GShare>();
    if (name == "local")
        return std::make_unique<LocalHistory>();
    if (name == "tournament")
        return std::make_unique<Tournament>();
    throw util::ConfigError(
        util::strprintf("unknown branch predictor '%s' (expected one of "
                        "perfect, taken, bimodal, gshare, local, "
                        "tournament)",
                        name.c_str()));
}

} // namespace fo4::bp
