/**
 * @file
 * A fixed-size worker pool with structured fan-out.  Deliberately
 * work-stealing-free: there is one shared FIFO queue, so the assignment
 * of tasks to workers is scheduling-dependent but the *set* of tasks
 * executed, and anything they write to disjoint slots, is not.
 *
 * The intended usage is structured: create a TaskGroup, submit the
 * fan-out, wait().  wait() is a *helping* wait — the waiting thread
 * drains queued tasks itself instead of blocking, which gives two
 * properties the sweep engine relies on:
 *
 *  - a ThreadPool built with `threads == 1` spawns no workers at all;
 *    every task runs inline, in submission order, on the thread that
 *    calls wait().  The serial path and the parallel path are therefore
 *    the same code;
 *  - a task may itself create a TaskGroup on the same pool and wait on
 *    it (nested fan-out) without deadlocking, because waiting threads
 *    keep executing queued work.
 *
 * Exceptions thrown by a task are captured; TaskGroup::wait() rethrows
 * the first one after every task in the group has finished, so a
 * throwing task never abandons its siblings mid-flight and never takes
 * down a worker thread.
 */

#ifndef FO4_UTIL_THREAD_POOL_HH
#define FO4_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hh"

namespace fo4::util
{

class TaskGroup;

/** Fixed-size pool; `threads` counts the helping waiter, so `threads`
 *  is the true parallelism and 1 means strictly serial execution. */
class ThreadPool
{
  public:
    /** `threads` <= 0 selects hardwareThreads(). */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Configured parallelism (workers + the helping waiter). */
    int threadCount() const { return count; }

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static int hardwareThreads();

  private:
    friend class TaskGroup;

    /** Enqueue one task (TaskGroup wraps bookkeeping around it). */
    void enqueue(std::function<void()> task);

    /** Pop and run one queued task inline; false if the queue is empty. */
    bool runOne();

    void workerLoop();

    int count = 1;
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable available;
    bool stopping = false;
};

/**
 * One structured fan-out: submit N tasks, then wait() for all of them.
 * The group records the first exception any task throws and rethrows it
 * from wait() once the whole group has drained.
 *
 * Cooperative cancellation: construct the group with a CancelToken and
 * a cancellation request takes effect at task boundaries — tasks that
 * are already running finish normally (draining in-flight work), tasks
 * still queued are *skipped*: their bodies never run, they complete the
 * group's accounting without error, and skippedTasks() counts them.
 * wait() still returns normally; the caller decides what a partially
 * executed fan-out means (the checkpointed sweep engine flushes its
 * journal and raises CancelledError).
 */
class TaskGroup
{
  public:
    explicit TaskGroup(ThreadPool &pool,
                       const CancelToken *cancel = nullptr)
        : pool(pool), cancel(cancel)
    {
    }

    /** Waits for stragglers, swallowing any unretrieved exception (a
     *  caller that cares must call wait() itself). */
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Add one task to the group and make it runnable. */
    void submit(std::function<void()> task);

    /**
     * Help execute queued tasks until every task of this group has
     * completed, then rethrow the first captured exception, if any.
     */
    void wait();

    /** Tasks whose bodies were skipped by a cancellation request.
     *  Stable only after wait() returns. */
    std::size_t skippedTasks() const;

  private:
    void drain();
    void finishTask(std::exception_ptr error, bool skipped);

    ThreadPool &pool;
    const CancelToken *cancel = nullptr;
    mutable std::mutex mutex;
    std::condition_variable drained;
    std::size_t pending = 0;
    std::size_t skipped = 0;
    std::exception_ptr firstError;
};

} // namespace fo4::util

#endif // FO4_UTIL_THREAD_POOL_HH
