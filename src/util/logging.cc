#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace fo4::util
{

namespace
{

LogLevel globalLevel = LogLevel::Warnings;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
assertFailed(const char *cond, const char *file, int line)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d\n",
                 cond, file, line);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace fo4::util
