#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace fo4::util
{

namespace
{

LogLevel globalLevel = LogLevel::Warnings;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list probe;
    va_copy(probe, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, probe);
    va_end(probe);
    if (n <= 0)
        return std::string();
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

void
assertFailed(const char *cond, const char *file, int line)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d\n",
                 cond, file, line);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Silent)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

} // namespace fo4::util
