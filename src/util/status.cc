#include "util/status.hh"

#include <cstdarg>
#include <cstdio>

namespace fo4::util
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "Ok";
      case ErrorCode::InvalidConfig:
        return "InvalidConfig";
      case ErrorCode::UnknownKey:
        return "UnknownKey";
      case ErrorCode::TraceIo:
        return "TraceIo";
      case ErrorCode::TraceFormat:
        return "TraceFormat";
      case ErrorCode::TraceCorrupt:
        return "TraceCorrupt";
      case ErrorCode::Deadlock:
        return "Deadlock";
      case ErrorCode::JournalIo:
        return "JournalIo";
      case ErrorCode::JournalFormat:
        return "JournalFormat";
      case ErrorCode::JournalCorrupt:
        return "JournalCorrupt";
      case ErrorCode::ResumeMismatch:
        return "ResumeMismatch";
      case ErrorCode::Cancelled:
        return "Cancelled";
      case ErrorCode::NetIo:
        return "NetIo";
      case ErrorCode::Protocol:
        return "Protocol";
      case ErrorCode::Overloaded:
        return "Overloaded";
      case ErrorCode::NotFound:
        return "NotFound";
      case ErrorCode::NotReady:
        return "NotReady";
      case ErrorCode::Internal:
        return "Internal";
    }
    return "Unknown";
}

ErrorCode
errorCodeFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(ErrorCode::Internal); ++i) {
        const auto code = static_cast<ErrorCode>(i);
        if (name == errorCodeName(code))
            return code;
    }
    return ErrorCode::Internal;
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    return strprintf("[%s] %s", errorCodeName(code_), message_.c_str());
}

void
ErrorCollector::addf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    messages_.push_back(vstrprintf(fmt, args));
    va_end(args);
}

std::string
ErrorCollector::joined() const
{
    std::string out;
    for (const auto &m : messages_) {
        if (!out.empty())
            out += "; ";
        out += m;
    }
    return out;
}

Status
ErrorCollector::status(ErrorCode code) const
{
    if (empty())
        return Status::ok();
    return Status(code, joined());
}

TraceError::TraceError(ErrorCode code, const std::string &message)
    : SimError(code, message)
{
    FO4_ASSERT(code == ErrorCode::TraceIo ||
                   code == ErrorCode::TraceFormat ||
                   code == ErrorCode::TraceCorrupt,
               "TraceError built with non-trace code %s",
               errorCodeName(code));
}

JournalError::JournalError(ErrorCode code, const std::string &message)
    : SimError(code, message)
{
    FO4_ASSERT(code == ErrorCode::JournalIo ||
                   code == ErrorCode::JournalFormat ||
                   code == ErrorCode::JournalCorrupt ||
                   code == ErrorCode::ResumeMismatch,
               "JournalError built with non-journal code %s",
               errorCodeName(code));
}

SvcError::SvcError(ErrorCode code, const std::string &message)
    : SimError(code, message)
{
    FO4_ASSERT(code != ErrorCode::Ok, "SvcError built with code Ok");
}

std::string
DeadlockDump::toString() const
{
    std::string out = strprintf(
        "watchdog: %s simulation made no progress to %llu instructions "
        "within %llu cycles\n",
        model.c_str(), static_cast<unsigned long long>(target),
        static_cast<unsigned long long>(cycleLimit));
    out += strprintf("  cycle %lld, committed %llu of %llu\n",
                     static_cast<long long>(cycle),
                     static_cast<unsigned long long>(committed),
                     static_cast<unsigned long long>(target));
    if (model == "in-order") {
        out += strprintf("  issue queue: %llu entries\n",
                         static_cast<unsigned long long>(queueOccupancy));
    } else {
        out += strprintf(
            "  ROB: %llu entries, issue window: %llu entries, "
            "front end: %llu in flight, LSQ: %lld entries\n",
            static_cast<unsigned long long>(robOccupancy),
            static_cast<unsigned long long>(windowOccupancy),
            static_cast<unsigned long long>(frontEndOccupancy),
            static_cast<long long>(lsqOccupancy));
    }
    if (!oldestStalled.empty())
        out += "  oldest stalled op: " + oldestStalled + "\n";
    return out;
}

DeadlockError::DeadlockError(DeadlockDump dump)
    : SimError(ErrorCode::Deadlock, dump.toString()), dump_(std::move(dump))
{
}

int
runTopLevel(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const CancelledError &e) {
        // Cancellation is a clean, resumable stop, not a failure; use
        // the conventional 128+SIGINT exit code so wrappers can retry.
        std::fprintf(stderr, "cancelled: %s\n", e.what());
        return 130;
    } catch (const SimError &e) {
        std::fprintf(stderr, "error [%s]: %s\n", errorCodeName(e.code()),
                     e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "internal error: %s\n", e.what());
        return 2;
    }
}

} // namespace fo4::util
