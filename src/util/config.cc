#include "util/config.hh"

#include <algorithm>
#include <cstdlib>

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::util
{

Config
Config::fromArgs(int argc, const char *const *argv)
{
    Config cfg;
    // Original argv spelling per key, so a duplicate can name both
    // offending tokens ("jobs=4" vs "--jobs=8") instead of whichever
    // normalized form survived.
    std::map<std::string, std::string> firstToken;
    for (int i = 1; i < argc; ++i) {
        const std::string raw = argv[i];
        std::string token = raw;
        // GNU-style spelling of the same keys: --jobs=4 == jobs=4.  A
        // bare "--flag" becomes flag=1 so boolean knobs read naturally.
        if (token.rfind("--", 0) == 0) {
            token.erase(0, 2);
            if (token.find('=') == std::string::npos)
                token += "=1";
        }
        const auto eq = token.find('=');
        if (eq == std::string::npos) {
            cfg.args.push_back(token);
            continue;
        }
        const std::string key = token.substr(0, eq);
        const auto [it, inserted] = firstToken.emplace(key, raw);
        if (!inserted) {
            // Silently keeping either value would make the command line
            // order-dependent; make the conflict loud instead.
            throw ConfigError(strprintf(
                "duplicate config key '%s': given as '%s' and '%s' — "
                "pass each key at most once",
                key.c_str(), it->second.c_str(), raw.c_str()));
        }
        cfg.set(key, token.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    const auto [it, inserted] = values.emplace(key, value);
    if (!inserted) {
        throw ConfigError(strprintf(
            "duplicate config key '%s': already set to '%s', refusing "
            "to overwrite with '%s'",
            key.c_str(), it->second.c_str(), value.c_str()));
    }
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) > 0;
}

std::vector<std::string>
Config::checkKnown(const std::vector<KeyDoc> &known) const
{
    std::vector<std::string> unknown;
    for (const auto &[key, value] : values) {
        const bool found =
            key == "help" ||
            std::any_of(known.begin(), known.end(),
                        [&key](const KeyDoc &k) { return key == k.key; });
        if (!found) {
            warn("unknown config key '%s=%s' (misspelled?) is ignored — "
                 "run with --help for the recognized keys",
                 key.c_str(), value.c_str());
            unknown.push_back(key);
        }
    }
    return unknown;
}

std::string
renderKeyHelp(const std::string &program, const std::vector<KeyDoc> &keys)
{
    std::size_t width = 6; // "--help"
    for (const auto &k : keys)
        width = std::max(width, std::string(k.key).size() + 1);

    std::string out =
        strprintf("usage: %s [key=value ...]\n\nrecognized keys:\n",
                  program.c_str());
    for (const auto &k : keys) {
        out += strprintf("  %-*s  %s\n", static_cast<int>(width),
                         (std::string(k.key) + "=").c_str(), k.help);
    }
    out += strprintf("  %-*s  %s\n", static_cast<int>(width), "--help",
                     "print this key list and exit");
    out += "\nevery key also accepts the --key=value spelling; a bare "
           "--flag means flag=1\n";
    return out;
}

int
runTopLevel(int argc, const char *const *argv,
            const std::vector<KeyDoc> &keys,
            const std::function<int()> &body)
{
    // Scan raw argv instead of Config::fromArgs: help must win even on
    // a command line fromArgs would reject (duplicate keys, bad types).
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token == "help" || token == "--help" || token == "help=1" ||
            token == "--help=1") {
            std::fputs(renderKeyHelp(argv[0] ? argv[0] : "program", keys)
                           .c_str(),
                       stdout);
            return 0;
        }
    }
    return runTopLevel(body);
}

std::vector<std::string>
Config::checkKnown(std::initializer_list<const char *> known) const
{
    std::vector<std::string> unknown;
    for (const auto &[key, value] : values) {
        const bool found = std::any_of(known.begin(), known.end(),
                                       [&key](const char *k) {
                                           return key == k;
                                       });
        if (!found) {
            warn("unknown config key '%s=%s' (misspelled?) is ignored",
                 key.c_str(), value.c_str());
            unknown.push_back(key);
        }
    }
    return unknown;
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0') {
        throw ConfigError(strprintf("config key '%s': '%s' is not an "
                                    "integer",
                                    key.c_str(), it->second.c_str()));
    }
    return v;
}

std::int64_t
Config::getPositiveInt(const std::string &key, std::int64_t fallback) const
{
    const std::int64_t v = getInt(key, fallback);
    if (has(key) && v <= 0) {
        throw ConfigError(strprintf("config key '%s': %lld is not a "
                                    "positive integer (must be >= 1)",
                                    key.c_str(),
                                    static_cast<long long>(v)));
    }
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        throw ConfigError(strprintf("config key '%s': '%s' is not a "
                                    "number",
                                    key.c_str(), it->second.c_str()));
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values.find(key);
    if (it == values.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    throw ConfigError(strprintf("config key '%s': '%s' is not a boolean",
                                key.c_str(), v.c_str()));
}

} // namespace fo4::util
