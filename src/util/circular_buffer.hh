/**
 * @file
 * Fixed-capacity FIFO ring buffer used for pipeline queues (fetch queue,
 * reorder buffer, latched stage outputs).  Indexable from the front so
 * in-order structures can scan their contents.
 */

#ifndef FO4_UTIL_CIRCULAR_BUFFER_HH
#define FO4_UTIL_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace fo4::util
{

/** Fixed-capacity circular FIFO. */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : storage(capacity)
    {
        FO4_ASSERT(capacity > 0, "circular buffer needs capacity > 0");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == storage.size(); }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return storage.size(); }
    std::size_t free() const { return capacity() - size(); }

    void
    pushBack(T value)
    {
        FO4_ASSERT(!full(), "push onto a full buffer");
        storage[(head + count) % storage.size()] = std::move(value);
        ++count;
    }

    T &
    front()
    {
        FO4_ASSERT(!empty(), "front of an empty buffer");
        return storage[head];
    }

    const T &
    front() const
    {
        FO4_ASSERT(!empty(), "front of an empty buffer");
        return storage[head];
    }

    void
    popFront()
    {
        FO4_ASSERT(!empty(), "pop from an empty buffer");
        head = (head + 1) % storage.size();
        --count;
    }

    /** i-th element from the front (0 == front()). */
    T &
    at(std::size_t i)
    {
        FO4_ASSERT(i < count, "index %zu out of range (size %zu)", i, count);
        return storage[(head + i) % storage.size()];
    }

    const T &
    at(std::size_t i) const
    {
        FO4_ASSERT(i < count, "index %zu out of range (size %zu)", i, count);
        return storage[(head + i) % storage.size()];
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> storage;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace fo4::util

#endif // FO4_UTIL_CIRCULAR_BUFFER_HH
