/**
 * @file
 * Error and status reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal() for
 * unrecoverable user errors in CLI-only code, warn()/inform() for
 * non-fatal status messages.
 *
 * Library code reports recoverable failures (bad configuration, corrupt
 * traces, watchdog expiry) by throwing the SimError hierarchy in
 * util/status.hh instead of calling fatal(); CLIs restore the old
 * print-and-exit behaviour with util::runTopLevel().
 */

#ifndef FO4_UTIL_LOGGING_HH
#define FO4_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace fo4::util
{

/** Destination and verbosity control for warn()/inform(). */
enum class LogLevel { Silent, Warnings, Info };

/** Set the global log level. Defaults to Warnings. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.  Use for conditions
 * that indicate a bug in the simulator itself, never for user error.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print the location header of a failed assertion (used by FO4_ASSERT). */
void assertFailed(const char *cond, const char *file, int line);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list args);

/**
 * Assert a simulator invariant with a formatted message.  Compiled in all
 * build types (unlike assert()) because cycle-accurate models are cheap to
 * check and expensive to debug.
 */
#define FO4_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::fo4::util::assertFailed(#cond, __FILE__, __LINE__);           \
            ::fo4::util::panic(__VA_ARGS__);                                \
        }                                                                   \
    } while (0)

} // namespace fo4::util

#endif // FO4_UTIL_LOGGING_HH
