#include "util/stats.hh"

#include <iomanip>

#include "util/logging.hh"

namespace fo4::util
{

Histogram::Histogram(std::size_t buckets)
    : counts(buckets, 0)
{
    FO4_ASSERT(buckets > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v)
{
    const std::size_t idx =
        v >= counts.size() ? counts.size() - 1 : static_cast<std::size_t>(v);
    ++counts[idx];
    ++total;
    sum += static_cast<double>(v);
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    FO4_ASSERT(i < counts.size(), "bucket %zu out of range", i);
    return counts[i];
}

double
Histogram::mean() const
{
    return total ? sum / static_cast<double>(total) : 0.0;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    total = 0;
    sum = 0.0;
}

void
StatSet::addCounter(const std::string &name, const Counter &c)
{
    counters[name] = &c;
}

void
StatSet::addAverage(const std::string &name, const Average &a)
{
    averages[name] = &a;
}

void
StatSet::addFormula(const std::string &name, std::function<double()> f)
{
    formulas[name] = std::move(f);
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, a] : averages)
        os << name << " " << std::setprecision(6) << a->mean() << "\n";
    for (const auto &[name, f] : formulas)
        os << name << " " << std::setprecision(6) << f() << "\n";
}

std::uint64_t
StatSet::counter(const std::string &name) const
{
    auto it = counters.find(name);
    FO4_ASSERT(it != counters.end(), "unknown counter '%s'", name.c_str());
    return it->second->value();
}

double
StatSet::formula(const std::string &name) const
{
    auto it = formulas.find(name);
    FO4_ASSERT(it != formulas.end(), "unknown formula '%s'", name.c_str());
    return it->second();
}

} // namespace fo4::util
