#include "util/csv.hh"

namespace fo4::util
{

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ",";
        out << escape(cells[i]);
    }
    out << "\n";
}

} // namespace fo4::util
