#include "util/csv.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/journal.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::util
{

namespace
{

[[noreturn]] void
throwIo(const std::string &path, const char *what)
{
    throw JournalError(ErrorCode::JournalIo,
                       strprintf("csv '%s': %s: %s", path.c_str(), what,
                                 std::strerror(errno)));
}

Status
csvError(const std::string &path, const char *what)
{
    return Status(ErrorCode::JournalIo,
                  strprintf("csv '%s': %s: %s", path.c_str(), what,
                            std::strerror(errno)));
}

/** Render one row exactly as CsvWriter would stream it. */
std::string
renderRow(const std::vector<std::string> &cells)
{
    std::string row;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            row += ',';
        row += CsvWriter::escape(cells[i]);
    }
    row += '\n';
    return row;
}

} // namespace

AtomicCsvFile::AtomicCsvFile(std::string p)
    : path(std::move(p)), tmp(path + ".tmp")
{
    fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        throwIo(path, "cannot create temporary");
}

AtomicCsvFile::~AtomicCsvFile()
{
    if (fd >= 0)
        ::close(fd);
    if (!done)
        std::remove(tmp.c_str()); // best effort; a stale .tmp is harmless
}

void
AtomicCsvFile::writeRow(const std::vector<std::string> &cells)
{
    if (const Status st = tryWriteRow(cells); !st.isOk())
        throw JournalError(st.code(), st.message());
}

Status
AtomicCsvFile::tryWriteRow(const std::vector<std::string> &cells)
{
    FO4_ASSERT(!done, "writeRow after commit()");
    const std::string row = renderRow(cells);
    const Status st = writeAllStatus(fd, row.data(), row.size(), tmp);
    if (!st.isOk())
        failed = true;
    return st;
}

void
AtomicCsvFile::commit()
{
    if (const Status st = tryCommit(); !st.isOk())
        throw JournalError(st.code(), st.message());
}

Status
AtomicCsvFile::tryCommit()
{
    FO4_ASSERT(!done, "commit() called twice");
    if (failed) {
        return Status(ErrorCode::JournalIo,
                      strprintf("csv '%s': commit refused after an "
                                "earlier write failure",
                                path.c_str()));
    }
    if (::fsync(fd) != 0)
        return csvError(path, "fsync failed");
    if (::close(fd) != 0) {
        fd = -1;
        return csvError(path, "close failed");
    }
    fd = -1;
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return csvError(path, "rename into place failed");
    // The rename is only durable once the directory entry is: without
    // this the published CSV can vanish on power loss (DESIGN.md §8).
    try {
        fsyncParentDirectory(path);
    } catch (const JournalError &e) {
        return Status(e.code(), e.what());
    }
    done = true;
    return Status::ok();
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ",";
        out << escape(cells[i]);
    }
    out << "\n";
}

} // namespace fo4::util
