#include "util/csv.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/journal.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::util
{

namespace
{

[[noreturn]] void
throwIo(const std::string &path, const char *what)
{
    throw JournalError(ErrorCode::JournalIo,
                       strprintf("csv '%s': %s: %s", path.c_str(), what,
                                 std::strerror(errno)));
}

/** fsync a path opened read-only (a closed file). */
void
fsyncPath(const std::string &path, const std::string &reported)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwIo(reported, "open for fsync failed");
    if (::fsync(fd) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throwIo(reported, "fsync failed");
    }
    ::close(fd);
}

} // namespace

AtomicCsvFile::AtomicCsvFile(std::string p)
    : path(std::move(p)), tmp(path + ".tmp"), out(tmp, std::ios::trunc),
      writer(out)
{
    if (!out.is_open())
        throwIo(path, "cannot create temporary");
}

AtomicCsvFile::~AtomicCsvFile()
{
    if (!done) {
        out.close();
        std::remove(tmp.c_str()); // best effort; a stale .tmp is harmless
    }
}

void
AtomicCsvFile::writeRow(const std::vector<std::string> &cells)
{
    FO4_ASSERT(!done, "writeRow after commit()");
    writer.writeRow(cells);
    if (!out.good())
        throwIo(path, "write failed");
}

void
AtomicCsvFile::commit()
{
    FO4_ASSERT(!done, "commit() called twice");
    out.flush();
    if (!out.good())
        throwIo(path, "flush failed");
    out.close();
    fsyncPath(tmp, path);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throwIo(path, "rename into place failed");
    // The rename is only durable once the directory entry is: without
    // this the published CSV can vanish on power loss (DESIGN.md §8).
    fsyncParentDirectory(path);
    done = true;
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out << ",";
        out << escape(cells[i]);
    }
    out << "\n";
}

} // namespace fo4::util
