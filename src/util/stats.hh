/**
 * @file
 * Lightweight statistics package for the simulator: named scalar counters,
 * averages, distributions and derived formulas, grouped into a StatSet that
 * can be dumped as text.  Modeled loosely on the gem5 stats package but
 * without the registration machinery.
 */

#ifndef FO4_UTIL_STATS_HH
#define FO4_UTIL_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace fo4::util
{

/** Monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++count_; return *this; }
    Counter &operator+=(std::uint64_t n) { count_ += n; return *this; }

    std::uint64_t value() const { return count_; }
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** Running mean of observed samples. */
class Average
{
  public:
    void sample(double v) { sum_ += v; ++n_; }

    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    std::uint64_t samples() const { return n_; }
    double total() const { return sum_; }
    void reset() { sum_ = 0.0; n_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t n_ = 0;
};

/**
 * Fixed-bucket histogram over [0, buckets).  Samples at or above the last
 * bucket are clamped into it (an explicit overflow bucket).
 */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets);

    void sample(std::uint64_t v);

    std::uint64_t bucket(std::size_t i) const;
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t samples() const { return total; }
    double mean() const;
    void reset();

  private:
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/**
 * A named collection of statistics.  Components register references to
 * their counters at construction; dump() renders everything.
 */
class StatSet
{
  public:
    void addCounter(const std::string &name, const Counter &c);
    void addAverage(const std::string &name, const Average &a);
    /** Register a derived value computed on demand at dump time. */
    void addFormula(const std::string &name, std::function<double()> f);

    /** Render "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Look up a registered counter's current value by name. */
    std::uint64_t counter(const std::string &name) const;

    /** Evaluate a registered formula by name. */
    double formula(const std::string &name) const;

  private:
    std::map<std::string, const Counter *> counters;
    std::map<std::string, const Average *> averages;
    std::map<std::string, std::function<double()>> formulas;
};

} // namespace fo4::util

#endif // FO4_UTIL_STATS_HH
