/**
 * @file
 * Portable TCP sockets for the sweep service: a listener, a blocking
 * stream with poll-based timeouts, and nothing else.
 *
 * Error model: every failure — create, bind, connect, a peer that
 * vanishes mid-read, a timeout — throws SvcError(ErrorCode::NetIo) with
 * the errno text, except orderly EOF, which readExact reports as
 * `false` so framing code can distinguish "the peer hung up between
 * frames" (normal) from "the peer hung up inside a frame" (a truncated
 * frame, ErrorCode::Protocol, raised by the framing layer).
 *
 * Blocking discipline: every operation — connect, read, accept *and
 * write* — takes a deadline in milliseconds and poll()s before touching
 * the fd, so a server loop can wake periodically to check a CancelToken
 * without dedicating a signal or an eventfd to it, and a peer that
 * stops draining its socket (a black-holed connection) costs a typed
 * NetIo timeout instead of a thread wedged in send().  SIGPIPE is
 * suppressed; a broken pipe is a NetIo error, not a process kill.
 */

#ifndef FO4_UTIL_NET_HH
#define FO4_UTIL_NET_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace fo4::util
{

/** A connected, blocking TCP stream (RAII over the fd). */
class TcpStream
{
  public:
    /** An unconnected stream (fd() < 0); for container use. */
    TcpStream() = default;

    /** Adopt an already-connected fd (the accept path). */
    explicit TcpStream(int fd) : fd_(fd) {}

    /**
     * Connect to host:port (numeric IP or resolvable name).  Throws
     * SvcError(NetIo) when resolution or connection fails, or when the
     * connection is not established within `timeoutMs` (<= 0 waits as
     * long as the kernel does).  The returned stream is blocking.
     */
    static TcpStream connect(const std::string &host, std::uint16_t port,
                             int timeoutMs = -1);

    TcpStream(TcpStream &&other) noexcept;
    TcpStream &operator=(TcpStream &&other) noexcept;
    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;
    ~TcpStream();

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /**
     * Read exactly `size` bytes.  Returns false on orderly EOF *before
     * the first byte*; EOF after a partial read is a truncated frame
     * and throws SvcError(Protocol).  A poll timeout (no byte for
     * `timeoutMs`; <= 0 waits forever) or a socket error throws
     * SvcError(NetIo).
     */
    bool readExact(void *buf, std::size_t size, int timeoutMs = -1);

    /**
     * Wait up to `timeoutMs` for the stream to become readable (data
     * or EOF).  True when a subsequent read would not block, false on
     * timeout — the session loop's cancel-poll tick.  Throws
     * SvcError(NetIo) on poll errors.
     */
    bool waitReadable(int timeoutMs);

    /**
     * Write all `size` bytes.  Throws SvcError(NetIo) on failure, or
     * when the kernel accepts no further byte for `timeoutMs` (<= 0
     * waits forever) — the per-RPC write deadline that keeps a
     * black-holed peer from wedging the writing thread.  A timeout may
     * leave a partial frame on the wire; the stream is no longer
     * frame-aligned and the caller should close it.
     */
    void writeAll(const void *buf, std::size_t size, int timeoutMs = -1);

    /** Close now (also done by the destructor). */
    void close();

  private:
    int fd_ = -1;
};

/** A listening TCP socket bound to 127.0.0.1 (the service is local-
 *  machine by design; fronting it with real routing is future work). */
class TcpListener
{
  public:
    /**
     * Bind and listen on `port`; 0 picks an ephemeral port, readable
     * back via port() — how tests and the CI smoke job avoid
     * collisions.  Throws SvcError(NetIo) on failure.
     */
    explicit TcpListener(std::uint16_t port);

    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&) = delete;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;
    ~TcpListener();

    /** The bound port (resolves an ephemeral request). */
    std::uint16_t port() const { return boundPort; }

    /**
     * Accept one connection, waiting at most `timeoutMs` (<= 0 waits
     * forever).  Returns nullopt on timeout — the server's cancel-poll
     * tick — and throws SvcError(NetIo) on socket errors.  Returns
     * nullopt after close() as well, so a concurrent shutdown reads as
     * a quiet tick instead of an error.
     */
    std::optional<TcpStream> accept(int timeoutMs);

    /** Stop accepting; subsequent accept() calls return nullopt.
     *  Safe to call while another thread is blocked in accept() — that
     *  is the server's shutdown path — which is why the fd is atomic:
     *  close() publishes the -1 before releasing the descriptor. */
    void close();

  private:
    std::atomic<int> fd_{-1};
    std::uint16_t boundPort = 0;
};

} // namespace fo4::util

#endif // FO4_UTIL_NET_HH
