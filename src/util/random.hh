/**
 * @file
 * Deterministic pseudo-random number generation: the sequential
 * generator and sampling distributions used by the synthetic workload
 * generator, and the counter-based splittable streams used wherever a
 * draw must be a *pure function of its coordinates* (Monte Carlo
 * overhead sampling, retry-backoff jitter).
 *
 * We use xoshiro256** / keyed SplitMix-style mixing rather than
 * std::mt19937 and std::normal_distribution so that every draw is
 * bit-reproducible across standard library implementations, which keeps
 * the experiment tables stable.
 */

#ifndef FO4_UTIL_RANDOM_HH
#define FO4_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace fo4::util
{

/**
 * xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64 so that
 * any 64-bit seed produces a well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric sample: number of failures before the first success with
     * success probability p in (0, 1]. Mean (1-p)/p.
     */
    std::uint64_t geometric(double p);

    /** Approximately normal sample via sum of uniforms (Irwin-Hall, n=12). */
    double normal(double mean, double stddev);

  private:
    std::uint64_t s[4];
};

/**
 * A counter-based, splittable random stream: an immutable 64-bit key
 * whose draws are pure functions of (key, counter).  This is the RNG
 * discipline behind every reproducible-by-coordinates draw in the
 * repo — Monte Carlo overhead sampling keyed by (seed, point, sample,
 * stage) and the retry policy's per-(cell, attempt) backoff jitter —
 * because it makes determinism structural:
 *
 *  - no shared mutable state: any thread, worker daemon, or resumed
 *    process that knows the coordinates reproduces the draw, so results
 *    are byte-identical at any jobs=, across checkpoint/resume, and
 *    when cells are sharded over the sweep fabric;
 *  - random access: bits(k) costs the same with or without computing
 *    bits(0..k-1), so skipping draws (a rejected sample, a replayed
 *    cell) never shifts later ones;
 *  - splittable: child(i) derives an independent stream, so a sampling
 *    hierarchy (point -> sample -> attempt -> stage) maps onto streams
 *    without counter bookkeeping across levels.
 *
 * Draws use only integer mixing and IEEE add/multiply (normals are
 * Irwin-Hall sums of uniforms, not libm transforms), so streams are
 * bit-stable across platforms and standard libraries; the unit tests
 * pin golden draw values.
 */
class RandomStream
{
  public:
    /** Root stream of a seeded domain: same seed, same stream. */
    static RandomStream root(std::uint64_t seed);

    /** Independent child stream; same (parent, index) -> same child. */
    RandomStream child(std::uint64_t index) const;

    /** Raw 64-bit draw at `counter`: a pure function of (key, counter). */
    std::uint64_t bits(std::uint64_t counter) const;

    /** Uniform double in [0, 1) at `counter`. */
    double uniform(std::uint64_t counter) const;

    /**
     * Normal draw number `draw` (each consumes the 12 uniforms at
     * counters [12*draw, 12*draw + 12) via an Irwin-Hall sum, so
     * successive draws never overlap).  sigma == 0 returns `mean`
     * bit-exactly — the zero-variance stream *is* the deterministic
     * value, which is what lets a zero-sigma Monte Carlo run reproduce
     * the deterministic sweep byte-for-byte.
     */
    double normal(std::uint64_t draw, double mean, double sigma) const;

    /** The stream's key (diagnostics, fingerprints). */
    std::uint64_t key() const { return k; }

  private:
    explicit RandomStream(std::uint64_t key) : k(key) {}
    std::uint64_t k;
};

/**
 * Sampler over a fixed discrete distribution (alias method).  Used for op
 * mixes and dependence-distance distributions; O(1) per sample.
 */
class DiscreteSampler
{
  public:
    /**
     * Build from non-negative weights.  At least one weight must be
     * positive; weights need not be normalized.
     */
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index in [0, size()). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return prob.size(); }

    /** Normalized probability of index i (for tests). */
    double probability(std::size_t i) const;

  private:
    std::vector<double> prob;   // alias-method acceptance probabilities
    std::vector<std::uint32_t> alias;
    std::vector<double> norm;   // normalized input distribution
};

/**
 * Zipf-distributed sampler over {0, .., n-1} with exponent s, used to model
 * skewed memory reference streams.  Precomputes the CDF; O(log n) sample.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace fo4::util

#endif // FO4_UTIL_RANDOM_HH
