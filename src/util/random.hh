/**
 * @file
 * Deterministic pseudo-random number generation and the sampling
 * distributions used by the synthetic workload generator.
 *
 * We use xoshiro256** rather than std::mt19937 so that trace generation is
 * bit-reproducible across standard library implementations, which keeps the
 * experiment tables stable.
 */

#ifndef FO4_UTIL_RANDOM_HH
#define FO4_UTIL_RANDOM_HH

#include <cstdint>
#include <vector>

namespace fo4::util
{

/**
 * xoshiro256** generator (Blackman & Vigna), seeded via SplitMix64 so that
 * any 64-bit seed produces a well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound) using Lemire's method. bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric sample: number of failures before the first success with
     * success probability p in (0, 1]. Mean (1-p)/p.
     */
    std::uint64_t geometric(double p);

    /** Approximately normal sample via sum of uniforms (Irwin-Hall, n=12). */
    double normal(double mean, double stddev);

  private:
    std::uint64_t s[4];
};

/**
 * Sampler over a fixed discrete distribution (alias method).  Used for op
 * mixes and dependence-distance distributions; O(1) per sample.
 */
class DiscreteSampler
{
  public:
    /**
     * Build from non-negative weights.  At least one weight must be
     * positive; weights need not be normalized.
     */
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index in [0, size()). */
    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return prob.size(); }

    /** Normalized probability of index i (for tests). */
    double probability(std::size_t i) const;

  private:
    std::vector<double> prob;   // alias-method acceptance probabilities
    std::vector<std::uint32_t> alias;
    std::vector<double> norm;   // normalized input distribution
};

/**
 * Zipf-distributed sampler over {0, .., n-1} with exponent s, used to model
 * skewed memory reference streams.  Precomputes the CDF; O(log n) sample.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    std::size_t sample(Rng &rng) const;

    std::size_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace fo4::util

#endif // FO4_UTIL_RANDOM_HH
