/**
 * @file
 * Aggregate means and streaming statistics.  The paper reports the
 * harmonic mean of per-benchmark BIPS; these helpers centralize that so
 * every experiment aggregates the same way.  The streaming accumulators
 * (Welford moments, P-squared quantiles) serve the Monte Carlo study,
 * whose confidence bands must be computable in one pass over thousands
 * of samples without retaining them.
 */

#ifndef FO4_UTIL_MEANS_HH
#define FO4_UTIL_MEANS_HH

#include <cstdint>
#include <vector>

namespace fo4::util
{

/** Harmonic mean; all values must be positive. */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean of a non-empty vector. */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean; all values must be positive. */
double geometricMean(const std::vector<double> &values);

/**
 * One-pass mean/variance accumulator (Welford's algorithm): numerically
 * stable at any count, no stored samples.  Feeding n copies of x yields
 * mean() == x bit-exactly (the update term (x - mean) is exactly zero),
 * which is what lets a zero-sigma Monte Carlo aggregate reproduce the
 * deterministic value byte-for-byte.
 */
class StreamingMoments
{
  public:
    void add(double x);

    std::uint64_t count() const { return n; }
    /** Arithmetic mean; requires count() > 0. */
    double mean() const;
    /** Unbiased sample variance (n-1 denominator); 0 while count() < 2. */
    double variance() const;
    double stddev() const;
    /** Smallest / largest value seen; require count() > 0. */
    double min() const;
    double max() const;

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
 * five markers tracking the target quantile in O(1) memory.  Exact for
 * the first five observations (and for any constant stream); afterwards
 * a piecewise-parabolic estimate whose error vanishes as the sample
 * grows.  Deterministic: the estimate is a pure function of the
 * insertion sequence, so aggregating Monte Carlo samples in slot order
 * gives byte-identical bands at any thread count.
 */
class P2Quantile
{
  public:
    /** Track the q-th quantile, q in (0, 1) (e.g. 0.05, 0.95). */
    explicit P2Quantile(double q);

    void add(double x);

    /** Current estimate; requires count() > 0. */
    double value() const;

    std::uint64_t count() const { return n; }
    double quantile() const { return q; }

  private:
    double q;
    std::uint64_t n = 0;
    double heights[5] = {};
    double positions[5] = {};
    double desired[5] = {};
    double increment[5] = {};
};

} // namespace fo4::util

#endif // FO4_UTIL_MEANS_HH
