/**
 * @file
 * Aggregate means.  The paper reports the harmonic mean of per-benchmark
 * BIPS; these helpers centralize that so every experiment aggregates the
 * same way.
 */

#ifndef FO4_UTIL_MEANS_HH
#define FO4_UTIL_MEANS_HH

#include <vector>

namespace fo4::util
{

/** Harmonic mean; all values must be positive. */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean of a non-empty vector. */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean; all values must be positive. */
double geometricMean(const std::vector<double> &values);

} // namespace fo4::util

#endif // FO4_UTIL_MEANS_HH
