#include "util/thread_pool.hh"

namespace fo4::util
{

int
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? static_cast<int>(n) : 1;
}

ThreadPool::ThreadPool(int threads)
    : count(threads <= 0 ? hardwareThreads() : threads)
{
    // The waiting thread helps, so a pool of `count` needs count - 1
    // dedicated workers; count == 1 runs everything on the waiter.
    workers.reserve(static_cast<std::size_t>(count - 1));
    for (int i = 0; i < count - 1; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }
    available.notify_one();
}

bool
ThreadPool::runOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (queue.empty())
            return false;
        task = std::move(queue.front());
        queue.pop_front();
    }
    task(); // task wrappers never throw (TaskGroup captures)
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (stopping && queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }
        task();
    }
}

TaskGroup::~TaskGroup()
{
    // A group abandoned early (e.g. by an exception in the submitting
    // scope) must still not let tasks outlive it; drain, don't rethrow.
    drain();
}

void
TaskGroup::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++pending;
    }
    pool.enqueue([this, task = std::move(task)]() noexcept {
        // The cancellation boundary: a task that has not started when
        // cancellation is requested never runs its body.  In-flight
        // siblings are unaffected — they drain to completion.
        if (cancel && cancel->cancelled()) {
            finishTask(nullptr, /*skipped=*/true);
            return;
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        finishTask(error, /*skipped=*/false);
    });
}

std::size_t
TaskGroup::skippedTasks() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return skipped;
}

void
TaskGroup::finishTask(std::exception_ptr error, bool wasSkipped)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (error && !firstError)
        firstError = error;
    if (wasSkipped)
        ++skipped;
    --pending;
    // Notify on every completion, not only the last: a waiter that went
    // to sleep because the queue looked empty must re-poll it, since a
    // finishing task may have submitted new (nested) work.  The notify
    // happens while the lock is held: once a waiter can observe
    // pending == 0 (it checks under this mutex) the notify call has
    // already returned, so the group — and this condvar — may be
    // destroyed immediately after without racing us.
    drained.notify_all();
}

void
TaskGroup::drain()
{
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (pending == 0)
                return;
        }
        if (pool.runOne())
            continue;
        // Nothing queued; our stragglers are running on workers.  Sleep
        // until one of them completes, then re-check the queue — the
        // finishing task may have submitted nested work.
        std::unique_lock<std::mutex> lock(mutex);
        if (pending > 0)
            drained.wait(lock);
    }
}

void
TaskGroup::wait()
{
    drain();
    std::exception_ptr error;
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::swap(error, firstError);
    }
    if (error)
        std::rethrow_exception(error);
}

} // namespace fo4::util
