#include "util/metrics.hh"

#include "util/logging.hh"

namespace fo4::util
{

namespace
{

// Off by default: the figure benches enable collection under stats= /
// verbose=, and a disabled increment costs one relaxed load + branch.
std::atomic<bool> gMetricsEnabled{false};

} // namespace

bool
metricsEnabled()
{
    return gMetricsEnabled.load(std::memory_order_relaxed);
}

bool
setMetricsEnabled(bool enabled)
{
    return gMetricsEnabled.exchange(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// MetricHistogram
// ---------------------------------------------------------------------

MetricHistogram::MetricHistogram(std::size_t buckets)
    : counts(buckets ? buckets : 1)
{
}

void
MetricHistogram::sample(std::uint64_t v)
{
    if (!metricsEnabled())
        return;
    const std::size_t i =
        v < counts.size() ? static_cast<std::size_t>(v) : counts.size() - 1;
    counts[i].fetch_add(1, std::memory_order_relaxed);
    sampleCount.fetch_add(1, std::memory_order_relaxed);
    sampleSum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::bucket(std::size_t i) const
{
    FO4_ASSERT(i < counts.size(), "histogram bucket out of range");
    return counts[i].load(std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::samples() const
{
    return sampleCount.load(std::memory_order_relaxed);
}

std::uint64_t
MetricHistogram::total() const
{
    return sampleSum.load(std::memory_order_relaxed);
}

double
MetricHistogram::mean() const
{
    const std::uint64_t n = samples();
    return n ? static_cast<double>(total()) / static_cast<double>(n) : 0.0;
}

void
MetricHistogram::reset()
{
    for (auto &c : counts)
        c.store(0, std::memory_order_relaxed);
    sampleCount.store(0, std::memory_order_relaxed);
    sampleSum.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricCounter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters[name];
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &name, std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple(buckets))
                 .first;
    }
    return it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::snapshotCounters() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters.size());
    for (const auto &[name, c] : counters)
        out.emplace_back(name, c.value());
    return out;
}

std::uint64_t
MetricsRegistry::value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

std::size_t
MetricsRegistry::counterCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters.size();
}

std::size_t
MetricsRegistry::histogramCount() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return histograms.size();
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex);
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, h] : histograms)
        h.reset();
}

void
MetricsRegistry::dump(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex);
    for (const auto &[name, c] : counters)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, h] : histograms) {
        os << name << ".samples " << h.samples() << "\n";
        os << name << ".mean " << h.mean() << "\n";
    }
}

// ---------------------------------------------------------------------
// TraceEventRing
// ---------------------------------------------------------------------

TraceEventRing::TraceEventRing(std::size_t capacity, std::int64_t startCycle,
                               std::int64_t windowCycles)
    : ring(capacity ? capacity : 1), windowStart(startCycle),
      windowEnd(windowCycles > 0 ? startCycle + windowCycles : startCycle)
{
}

void
TraceEventRing::emit(const TraceEvent &event)
{
    if (!wants(event.start))
        return;
    if (used == ring.size())
        ++dropped;
    else
        ++used;
    ring[next] = event;
    next = (next + 1) % ring.size();
}

std::size_t
TraceEventRing::size() const
{
    return used;
}

std::vector<TraceEvent>
TraceEventRing::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(used);
    const std::size_t first = (next + ring.size() - used) % ring.size();
    for (std::size_t i = 0; i < used; ++i)
        out.push_back(ring[(first + i) % ring.size()]);
    return out;
}

const char *
TraceEventRing::trackName(int track)
{
    switch (track) {
    case 0:
        return "front end (fetch/decode/rename)";
    case 1:
        return "window (wait for issue)";
    case 2:
        return "execute";
    case 3:
        return "commit";
    default:
        return "other";
    }
}

void
TraceEventRing::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"window_start_cycle\":" << windowStart
       << ",\"window_end_cycle\":" << windowEnd
       << ",\"events_overwritten\":" << dropped << "},\"traceEvents\":[";
    bool firstEvent = true;
    for (int track = 0; track < 4; ++track) {
        if (!firstEvent)
            os << ",";
        firstEvent = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
           << track << ",\"args\":{\"name\":\"" << trackName(track)
           << "\"}}";
    }
    for (const auto &e : events()) {
        os << ",{\"name\":\"" << e.name << "\",\"cat\":\"" << e.category
           << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << e.track
           << ",\"ts\":" << e.start
           << ",\"dur\":" << (e.duration > 0 ? e.duration : 1)
           << ",\"args\":{\"seq\":" << e.seq << "}}";
    }
    os << "]}\n";
}

} // namespace fo4::util
