/**
 * @file
 * Content-addressed on-disk blob store: the storage primitive under the
 * service result cache (svc::ResultStore).
 *
 * A blob is one file named after its key, holding a CRC-framed record:
 *
 *     header (32 bytes): magic "FO4BLOB\n" | u32 format version |
 *                        u32 key length | u64 payload length |
 *                        u32 payload CRC32 |
 *                        u32 header CRC32 (over the first 28 bytes,
 *                        chained with the key bytes)
 *     key bytes          (echoed so a renamed file cannot masquerade
 *                         as a different entry)
 *     payload bytes
 *
 * Publication follows the §8 durability discipline: write to
 * `<final>.tmp.<pid>`, fsync, rename, fsync the parent directory — a
 * reader never observes a half-written blob under its final name.
 *
 * The robustness contract is the whole point (DESIGN.md §15): a cache
 * must *never* betray the byte-identity contract, so every failure
 * degrades to a miss and the caller recomputes:
 *
 *  - corrupt or truncated entry  → miss (+corrupt; file quarantined by
 *    unlink so it is not re-verified on every lookup)
 *  - format version skew         → miss (not deleted: an older/newer
 *    build may still want it)
 *  - ENOSPC / any disk I/O error → miss on read, dropped store on
 *    write (+diskError), never an exception
 *  - concurrent writer race      → last rename wins; both wrote the
 *    same bytes for the same key, so either outcome is correct
 *  - size-cap eviction mid-read  → the reader's already-open fd stays
 *    valid (POSIX unlink semantics); a late reader gets a clean miss
 *
 * get() and put() therefore never throw.  Only the constructor throws
 * (ConfigError) — on a cache dir that cannot be created, because that
 * is a configuration mistake, not a runtime fault.
 *
 * Thread safety: put()/evictions are serialized by an internal mutex;
 * get() is lock-free against concurrent puts and evictions.
 */

#ifndef FO4_UTIL_BLOB_STORE_HH
#define FO4_UTIL_BLOB_STORE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "util/journal.hh"

namespace fo4::util
{

/** Blob header format version; bumped on layout change, and a mismatch
 *  is a miss rather than corruption. */
constexpr std::uint32_t kBlobVersion = 1;

/**
 * Fault-injection hooks for the chaos harness (tests only).  All are
 * optional; an empty hook is a no-op.
 */
struct BlobStoreHooks
{
    /** Consulted before each payload write; return a fault to make the
     *  write land short and fail typed (see util::DiskFault). */
    std::function<std::optional<DiskFault>(const std::string &key)>
        onWrite;
    /** Runs after a blob is renamed into place (flip bytes, unlink…). */
    std::function<void(const std::string &key, const std::string &path)>
        afterPublish;
    /** Runs before each read attempt (unlink races, truncation…). */
    std::function<void(const std::string &key, const std::string &path)>
        beforeRead;
};

/** Lifetime operation counts (also mirrored into the global metrics
 *  registry under `<counterPrefix>.*`). */
struct BlobStoreStats
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<std::uint64_t> diskErrors{0};
};

class BlobStore
{
  public:
    /**
     * Open (creating one directory level if needed) a store rooted at
     * `dir`.  `maxBytes` caps the sum of blob file sizes; 0 means
     * unlimited.  Entries above the cap are evicted oldest-first (by
     * mtime; get() bumps mtime, making the order LRU-ish).
     * `counterPrefix` names the registry counters, e.g. "svc.cache".
     * Throws ConfigError if the directory cannot be created; any later
     * fault on the same directory degrades to misses instead.
     */
    BlobStore(std::string dir, std::uint64_t maxBytes,
              std::string counterPrefix);

    BlobStore(const BlobStore &) = delete;
    BlobStore &operator=(const BlobStore &) = delete;

    /**
     * Fetch the payload stored under `key`.  nullopt is a miss — absent
     * entry, corrupt entry (quarantined), version skew, or any I/O
     * error.  Never throws.
     */
    std::optional<std::string> get(const std::string &key);

    /**
     * Publish `payload` under `key` (atomic tmp+fsync+rename), evicting
     * oldest entries first if the size cap would be exceeded.  Returns
     * false — with the store unchanged under `key` — on any failure, or
     * when the payload alone exceeds the cap.  Never throws.
     */
    bool put(const std::string &key, std::string_view payload);

    /** Remove the entry for `key` (best effort; absent is fine). */
    void remove(const std::string &key);

    /** Sum of blob file sizes on disk right now (directory scan). */
    std::uint64_t sizeBytes() const;

    /** Number of blobs on disk right now (directory scan). */
    std::uint64_t entries() const;

    const BlobStoreStats &stats() const { return st; }
    const std::string &directory() const { return root; }

    /** Install chaos hooks (tests).  Not thread-safe against in-flight
     *  operations — install before use. */
    void setHooks(BlobStoreHooks h) { hooks = std::move(h); }

    /** Filesystem path a key maps to (exposed for tests/chaos). */
    std::string pathFor(const std::string &key) const;

  private:
    bool evictToFit(std::uint64_t incomingBytes);
    void countDiskError();
    void countCorrupt();

    std::string root;
    std::uint64_t maxBytes;
    std::string prefix;
    BlobStoreHooks hooks;
    BlobStoreStats st;
    std::mutex putMutex;
};

} // namespace fo4::util

#endif // FO4_UTIL_BLOB_STORE_HH
