/**
 * @file
 * Saturating counter template used by the branch predictors.
 */

#ifndef FO4_UTIL_SAT_COUNTER_HH
#define FO4_UTIL_SAT_COUNTER_HH

#include <cstdint>

namespace fo4::util
{

/**
 * An N-bit saturating up/down counter.  The predictor convention is that
 * values in the upper half predict taken.
 */
template <unsigned Bits>
class SatCounter
{
    static_assert(Bits >= 1 && Bits <= 16, "unreasonable counter width");

  public:
    static constexpr std::uint16_t maxValue = (1u << Bits) - 1;

    SatCounter() = default;
    explicit SatCounter(std::uint16_t initial) : value_(initial) {}

    void
    increment()
    {
        if (value_ < maxValue)
            ++value_;
    }

    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Train toward taken (true) or not-taken (false). */
    void
    train(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** True when the counter is in its upper half. */
    bool predictTaken() const { return value_ >= (1u << (Bits - 1)); }

    std::uint16_t value() const { return value_; }

  private:
    std::uint16_t value_ = (1u << (Bits - 1)); // weakly taken
};

} // namespace fo4::util

#endif // FO4_UTIL_SAT_COUNTER_HH
