/**
 * @file
 * Cooperative cancellation.  A CancelToken is a thread-safe,
 * async-signal-safe flag shared between a controller (a SIGINT handler,
 * a deadline, a caller tearing down) and the workers it wants to stop.
 *
 * Cancellation is *cooperative*: nothing is killed.  Workers poll the
 * token at natural preemption points — the sweep engine before starting
 * each grid cell, the cores alongside their per-cycle watchdog check —
 * and raise util::CancelledError when they observe a request.  In-flight
 * work is drained, durable state (the result journal) is flushed, and
 * the run stops in a state from which it can be resumed.
 */

#ifndef FO4_UTIL_CANCEL_HH
#define FO4_UTIL_CANCEL_HH

#include <atomic>
#include <csignal>

namespace fo4::util
{

/** One-way cancellation flag: set by a controller, polled by workers. */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation.  Idempotent; safe from a signal handler
     *  (lock-free atomic store, no allocation, no locks). */
    void
    requestCancel() noexcept
    {
        flag.store(true, std::memory_order_relaxed);
    }

    /** Has cancellation been requested?  Cheap enough to poll from a
     *  simulation's per-cycle loop. */
    bool
    cancelled() const noexcept
    {
        return flag.load(std::memory_order_relaxed);
    }

    /** Re-arm the token (tests, reuse across runs). */
    void
    reset() noexcept
    {
        flag.store(false, std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

namespace detail
{
/** Token the SIGINT handler flips; handlers can't capture state. */
inline CancelToken *sigintToken = nullptr;
} // namespace detail

/**
 * Route Ctrl-C through cooperative cancellation: the first SIGINT
 * requests cancellation on `token` (sweeps drain in-flight work, flush
 * their journal, and exit 130 via runTopLevel); the handler then
 * restores the default disposition, so a second Ctrl-C kills the
 * process the ordinary way if the drain takes too long.  The token must
 * outlive the run.
 */
inline void
installSigintCancel(CancelToken &token)
{
    detail::sigintToken = &token;
    struct sigaction action = {};
    action.sa_handler = [](int) {
        if (detail::sigintToken)
            detail::sigintToken->requestCancel(); // async-signal-safe
        std::signal(SIGINT, SIG_DFL);
    };
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
}

} // namespace fo4::util

#endif // FO4_UTIL_CANCEL_HH
