#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace fo4::util
{

void
TextTable::setHeader(std::vector<std::string> names)
{
    FO4_ASSERT(body.empty(), "header must be set before rows are added");
    header = std::move(names);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    FO4_ASSERT(cells.size() == header.size(),
               "row arity %zu != header arity %zu",
               cells.size(), header.size());
    body.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::num(std::int64_t v)
{
    return std::to_string(v);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size(), 0);
    for (std::size_t i = 0; i < header.size(); ++i)
        widths[i] = header[i].size();
    for (const auto &row : body)
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size())
                os << std::string(widths[i] - row[i].size() + 2, ' ');
        }
        os << "\n";
    };

    emit(header);
    std::size_t rule = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
        rule += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : body)
        emit(row);
}

} // namespace fo4::util
