/**
 * @file
 * Observability primitives: a process-wide counter/histogram registry
 * and a bounded event-trace ring buffer.
 *
 * Two kinds of instrumentation coexist in the simulator, with different
 * contracts:
 *
 *  - *Result statistics* (core::SimResult's stall attribution and
 *    occupancy counters) are part of a simulation's output.  They are
 *    plain integers owned by a single-threaded core, always on, and
 *    deterministic at any thread count — they ride the byte-identity
 *    contract of study::serializeSuite.
 *
 *  - *Engineering metrics* (this file) are process-global diagnostics:
 *    cache hit rates, cells executed, retries.  Increments are
 *    lock-free (relaxed atomics) and gated on one global enable flag,
 *    so a build with metrics compiled in but disabled pays one relaxed
 *    atomic load and a predictable branch per increment site — the
 *    "near-zero when off" contract benchmarked by bench_sim_throughput.
 *    Their *sums* are deterministic when the instrumented work is, but
 *    interleaving-dependent splits (e.g. concurrent-miss inserts in the
 *    latency cache) are not, so engineering metrics are never written
 *    into byte-identity artifacts.
 *
 * Thread safety: counter/histogram increments are wait-free after the
 * first lookup; name registration takes a mutex but returns stable
 * references (node-based storage), so a caller can look a counter up
 * once and increment it forever without synchronization.
 *
 * The TraceEventRing records per-instruction pipeline events for a
 * configurable cycle window and renders them as Chrome trace_event JSON
 * (load chrome://tracing or https://ui.perfetto.dev and drop the file).
 * A ring is single-writer: each simulated core owns at most one.
 */

#ifndef FO4_UTIL_METRICS_HH
#define FO4_UTIL_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace fo4::util
{

/** Is engineering-metrics collection globally enabled? */
bool metricsEnabled();

/** Flip the global collection flag (returns the previous value). */
bool setMetricsEnabled(bool enabled);

/**
 * A registered event counter.  Increments are relaxed atomic adds and
 * are dropped (one load + one branch) while collection is disabled.
 */
class MetricCounter
{
  public:
    void
    add(std::uint64_t n)
    {
        if (metricsEnabled())
            count.fetch_add(n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    std::uint64_t
    value() const
    {
        return count.load(std::memory_order_relaxed);
    }

    void reset() { count.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> count{0};
};

/**
 * A registered fixed-bucket histogram over [0, buckets); samples at or
 * above the last bucket clamp into it.  Sampling is lock-free.
 */
class MetricHistogram
{
  public:
    explicit MetricHistogram(std::size_t buckets);

    MetricHistogram(const MetricHistogram &) = delete;
    MetricHistogram &operator=(const MetricHistogram &) = delete;

    void sample(std::uint64_t v);

    std::size_t bucketCount() const { return counts.size(); }
    std::uint64_t bucket(std::size_t i) const;
    std::uint64_t samples() const;
    std::uint64_t total() const;
    double mean() const;
    void reset();

  private:
    // vector<atomic> is legal as long as it is never resized; the
    // bucket count is fixed at construction.
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> sampleCount{0};
    std::atomic<std::uint64_t> sampleSum{0};
};

/**
 * Name -> counter/histogram registry.  counter()/histogram() create on
 * first use and afterwards return the same object, so call sites may
 * cache the reference; the returned references stay valid for the
 * registry's lifetime (node-based map storage).
 */
class MetricsRegistry
{
  public:
    /** The shared process-wide instance. */
    static MetricsRegistry &global();

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create the counter with this name. */
    MetricCounter &counter(const std::string &name);

    /**
     * Find-or-create the histogram with this name.  The bucket count is
     * fixed by the first caller; later callers get the existing
     * histogram regardless of the `buckets` they pass.
     */
    MetricHistogram &histogram(const std::string &name,
                               std::size_t buckets = 16);

    /** Snapshot of every counter, sorted by name (deterministic). */
    std::vector<std::pair<std::string, std::uint64_t>> snapshotCounters()
        const;

    /** Look up a counter's current value; 0 if never registered. */
    std::uint64_t value(const std::string &name) const;

    std::size_t counterCount() const;
    std::size_t histogramCount() const;

    /** Zero every counter and histogram (registrations survive). */
    void resetAll();

    /** Render "name value" lines sorted by name (counters, then
     *  histogram summaries as name.samples / name.mean). */
    void dump(std::ostream &os) const;

  private:
    mutable std::mutex mutex;
    // std::map never relocates nodes, so references handed out by
    // counter()/histogram() survive any number of later insertions.
    std::map<std::string, MetricCounter> counters;
    std::map<std::string, MetricHistogram> histograms;
};

// ---------------------------------------------------------------------
// Event tracing
// ---------------------------------------------------------------------

/** One complete ("ph":"X") Chrome trace event, timestamps in cycles. */
struct TraceEvent
{
    const char *name = "";  ///< static string (op class, phase name)
    const char *category = ""; ///< static string ("pipeline", ...)
    int track = 0;          ///< Chrome tid: one lane per pipeline stage
    std::int64_t start = 0; ///< begin cycle
    std::int64_t duration = 0; ///< cycles (>= 1 for visibility)
    std::uint64_t seq = 0;  ///< instruction sequence number (args.seq)
};

/**
 * Bounded single-writer ring of trace events covering the cycle window
 * [startCycle, startCycle + windowCycles).  Events outside the window
 * are rejected at emit(); once the ring is full the oldest events are
 * overwritten, so the JSON always holds the *last* `capacity` events of
 * the window and reports how many were dropped.
 */
class TraceEventRing
{
  public:
    TraceEventRing(std::size_t capacity, std::int64_t startCycle,
                   std::int64_t windowCycles);

    /** Is this cycle inside the recording window?  Cores use this to
     *  skip event assembly entirely outside the window. */
    bool
    wants(std::int64_t cycle) const
    {
        return cycle >= windowStart && cycle < windowEnd;
    }

    /** Record one event; silently dropped when `start` is outside the
     *  window.  Overwrites the oldest event when full. */
    void emit(const TraceEvent &event);

    std::size_t size() const;
    std::size_t capacity() const { return ring.size(); }
    std::uint64_t overwritten() const { return dropped; }
    std::int64_t startCycle() const { return windowStart; }
    std::int64_t endCycle() const { return windowEnd; }

    /** Events in chronological (emit) order, oldest surviving first. */
    std::vector<TraceEvent> events() const;

    /**
     * Render the ring as a Chrome trace_event JSON object: one complete
     * event per entry (1 cycle = 1 "microsecond" of trace time), plus
     * thread_name metadata naming the per-stage lanes.  Suitable for
     * chrome://tracing and Perfetto.
     */
    void writeChromeJson(std::ostream &os) const;

    /** Canonical lane names (index == TraceEvent::track). */
    static const char *trackName(int track);

  private:
    std::vector<TraceEvent> ring;
    std::size_t next = 0;   ///< slot the next emit writes
    std::size_t used = 0;   ///< live entries (<= capacity)
    std::uint64_t dropped = 0;
    std::int64_t windowStart;
    std::int64_t windowEnd;
};

} // namespace fo4::util

#endif // FO4_UTIL_METRICS_HH
