/**
 * @file
 * Aligned plain-text table rendering for the benchmark harnesses.  Every
 * figure/table bench prints a paper-vs-model table through this class so
 * the output format is uniform across experiments.
 */

#ifndef FO4_UTIL_TABLE_HH
#define FO4_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fo4::util
{

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Set the header row.  Must be called before addRow(). */
    void setHeader(std::vector<std::string> names);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer. */
    static std::string num(std::int64_t v);

    /** Render with single-space-padded columns and a rule under the header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return header.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> body;
};

} // namespace fo4::util

#endif // FO4_UTIL_TABLE_HH
