/**
 * @file
 * Tiny typed key=value configuration store used by the example programs'
 * command lines (e.g. `pipeline_explorer t_useful=6 bench=gzip`).
 */

#ifndef FO4_UTIL_CONFIG_HH
#define FO4_UTIL_CONFIG_HH

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

namespace fo4::util
{

/**
 * One recognized `key=value` knob and its one-line description — the
 * unit of both spell checking (Config::checkKnown) and the generated
 * `--help` text (runTopLevel below).
 */
struct KeyDoc
{
    const char *key;
    const char *help;
};

/** String-keyed configuration with typed, defaulted accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse argv-style "key=value" tokens.  A leading "--" is stripped
     * ("--jobs=4" == "jobs=4"; a bare "--flag" means flag=1).  Tokens
     * without '=' are collected as positional arguments.  Giving the
     * same key twice — under either spelling — throws ConfigError
     * naming both offending tokens, instead of silently keeping one.
     */
    static Config fromArgs(int argc, const char *const *argv);

    /** Store one key; a key already present throws ConfigError. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /**
     * Compare the stored keys against the program's known key set and
     * warn() about each unknown one, so a misspelling like `t_usefull=6`
     * is flagged instead of silently ignored.  Returns the unknown keys.
     */
    std::vector<std::string>
    checkKnown(std::initializer_list<const char *> known) const;

    /** checkKnown over a documented key set (the spelling authority a
     *  binary also feeds to runTopLevel for its --help text). */
    std::vector<std::string>
    checkKnown(const std::vector<KeyDoc> &known) const;

    /** Typed accessors; a malformed value throws ConfigError. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;

    /**
     * getInt, but a stored value <= 0 throws ConfigError — for counts
     * (jobs=, attempts=) where zero or negative is always a user error
     * that should fail fast instead of silently selecting a default.
     * The fallback is returned unchecked when the key is absent.
     */
    std::int64_t getPositiveInt(const std::string &key,
                                std::int64_t fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    const std::vector<std::string> &positional() const { return args; }

  private:
    std::map<std::string, std::string> values;
    std::vector<std::string> args;
};

/** Render the `--help` text for a documented key set: one aligned
 *  "key=  description" line per KeyDoc, plus the help flag itself. */
std::string renderKeyHelp(const std::string &program,
                          const std::vector<KeyDoc> &keys);

/**
 * Help-aware variant of runTopLevel (util/status.hh): if the command
 * line asks for help — `help=1`, `--help`, or a bare `help` argument —
 * print the recognized keys from `keys` with their one-line
 * descriptions and exit 0 *without* running `body`.  Otherwise behaves
 * exactly like runTopLevel(body).  `keys` should be the same list the
 * body passes to Config::checkKnown, so the help text and the spell
 * checker can never drift apart.
 */
int runTopLevel(int argc, const char *const *argv,
                const std::vector<KeyDoc> &keys,
                const std::function<int()> &body);

} // namespace fo4::util

#endif // FO4_UTIL_CONFIG_HH
