/**
 * @file
 * Recoverable errors.  Three layers, used together:
 *
 *  - ErrorCode / Status / Expected<T>: value-style error reporting for
 *    APIs that want to return failure instead of raising it;
 *  - SimError and its subclasses (ConfigError, TraceError,
 *    DeadlockError): the exception hierarchy thrown by library code for
 *    recoverable failures — bad user configuration, corrupt trace
 *    files, simulations that exceed their watchdog budget;
 *  - runTopLevel(): the one place a CLI converts uncaught SimErrors
 *    back into today's print-and-exit behaviour.
 *
 * Internal invariant violations (simulator bugs) remain the domain of
 * panic()/FO4_ASSERT in util/logging.hh and still abort; nothing in
 * this file is for those.
 */

#ifndef FO4_UTIL_STATUS_HH
#define FO4_UTIL_STATUS_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace fo4::util
{

/** Machine-readable classification of every recoverable failure. */
enum class ErrorCode
{
    Ok = 0,
    InvalidConfig, ///< parameter/configuration values out of range
    UnknownKey,    ///< unrecognized (likely misspelled) config key
    TraceIo,       ///< trace file unreadable, unwritable or short
    TraceFormat,   ///< not a trace file / version or layout mismatch
    TraceCorrupt,  ///< well-formed header but damaged payload
    Deadlock,      ///< simulation exceeded its watchdog cycle budget
    JournalIo,     ///< durable output (journal, atomic CSV) I/O failure
    JournalFormat, ///< not a journal / header or version mismatch
    JournalCorrupt, ///< mid-file record damage (CRC or framing)
    ResumeMismatch, ///< journal identity differs from the run's inputs
    Cancelled,     ///< work stopped by a cooperative cancellation request
    NetIo,         ///< socket create/connect/read/write failure or timeout
    Protocol,      ///< malformed, corrupt or unrecognized wire frame
    Overloaded,    ///< admission control refused the request (queue full)
    NotFound,      ///< request names a job id the service does not know
    NotReady,      ///< results requested before the job finished
    Internal,      ///< unexpected failure escaping a lower layer
};

/** Stable name of a code ("InvalidConfig", ...); never null. */
const char *errorCodeName(ErrorCode code);

/**
 * Inverse of errorCodeName: the code whose stable name is `name`, or
 * Internal when the name is unknown (a peer speaking a newer protocol
 * may name codes this build has never heard of; degrading them to
 * Internal keeps the error typed without inventing meaning).
 */
ErrorCode errorCodeFromName(const std::string &name);

/** The outcome of an operation: Ok, or a code plus a message. */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status ok() { return Status{}; }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok", or "[Code] message". */
    std::string toString() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * Accumulates violations so a validator can report *every* problem in
 * one pass instead of aborting at the first.
 */
class ErrorCollector
{
  public:
    /** Record one violation, printf-style. */
    void addf(const char *fmt, ...) __attribute__((format(printf, 2, 3)));

    bool empty() const { return messages_.empty(); }
    std::size_t count() const { return messages_.size(); }
    const std::vector<std::string> &messages() const { return messages_; }

    /** All violations joined with "; ". */
    std::string joined() const;

    /** Ok when empty, otherwise `code` with the joined message. */
    Status status(ErrorCode code) const;

  private:
    std::vector<std::string> messages_;
};

/**
 * Base of the recoverable-error hierarchy.  what() carries the full
 * human-readable context; code() the machine-readable classification.
 */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCode code, const std::string &message)
        : std::runtime_error(message), code_(code)
    {
    }

    ErrorCode code() const { return code_; }

    Status toStatus() const { return Status(code_, what()); }

  private:
    ErrorCode code_;
};

/** Invalid user-supplied configuration (parameters, keys, names). */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &message)
        : SimError(ErrorCode::InvalidConfig, message)
    {
    }

    ConfigError(ErrorCode code, const std::string &message)
        : SimError(code, message)
    {
    }
};

/** A trace file that cannot be read, parsed or trusted. */
class TraceError : public SimError
{
  public:
    /** `code` must be one of TraceIo / TraceFormat / TraceCorrupt. */
    TraceError(ErrorCode code, const std::string &message);
};

/** A write-ahead journal that cannot be read, written or trusted. */
class JournalError : public SimError
{
  public:
    /** `code` must be one of JournalIo / JournalFormat / JournalCorrupt
     *  / ResumeMismatch. */
    JournalError(ErrorCode code, const std::string &message);
};

/**
 * A sweep-service failure: transport trouble (NetIo), a frame that
 * cannot be trusted (Protocol), an admission refusal (Overloaded), or a
 * job-lifecycle error (NotFound / NotReady).  The client also uses it
 * to rethrow errors the *server* reported, preserving the remote code —
 * so, unlike TraceError/JournalError, any non-Ok code is permitted.
 */
class SvcError : public SimError
{
  public:
    SvcError(ErrorCode code, const std::string &message);
};

/**
 * Work stopped early because cancellation was requested (Ctrl-C, a
 * deadline, a caller tearing down).  Cancellation is not a fault of the
 * work item: per-job fault isolation deliberately lets this escape so
 * the caller knows the result is absent, not failed.
 */
class CancelledError : public SimError
{
  public:
    explicit CancelledError(const std::string &message)
        : SimError(ErrorCode::Cancelled, message)
    {
    }
};

/** Pipeline-state snapshot captured when a simulation watchdog fires. */
struct DeadlockDump
{
    std::string model;                 ///< "out-of-order" / "in-order"
    std::int64_t cycle = 0;            ///< cycle the watchdog fired at
    std::uint64_t cycleLimit = 0;      ///< the budget that was exceeded
    std::uint64_t committed = 0;       ///< instructions committed so far
    std::uint64_t target = 0;          ///< instructions requested
    std::uint64_t robOccupancy = 0;    ///< ooo: dispatched, uncommitted
    std::uint64_t windowOccupancy = 0; ///< ooo: issue-window entries
    std::uint64_t frontEndOccupancy = 0; ///< ooo: fetched, undispatched
    std::int64_t lsqOccupancy = 0;     ///< ooo: loads/stores in flight
    std::uint64_t queueOccupancy = 0;  ///< inorder: issue-queue entries
    std::string oldestStalled; ///< description of the oldest stuck op

    /** Multi-line diagnostic report. */
    std::string toString() const;
};

/**
 * A run that exceeded its cycle budget without committing its target.
 * what() includes the full diagnostic dump.
 */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(DeadlockDump dump);

    const DeadlockDump &dump() const { return dump_; }

  private:
    DeadlockDump dump_;
};

/**
 * Either a value or the Status explaining its absence.  Accessing
 * value() on a failed Expected is a caller bug and panics.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Status status) : status_(std::move(status))
    {
        FO4_ASSERT(!status_.isOk(),
                   "Expected built from an Ok status but no value");
    }

    bool ok() const { return value_.has_value(); }

    const T &
    value() const
    {
        requireValue();
        return *value_;
    }

    T &
    value()
    {
        requireValue();
        return *value_;
    }

    /** Ok for a held value, the originating error otherwise. */
    const Status &status() const { return status_; }

    T
    valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

  private:
    void
    requireValue() const
    {
        if (!value_) {
            panic("Expected::value() on error: %s",
                  status_.toString().c_str());
        }
    }

    std::optional<T> value_;
    Status status_;
};

/**
 * Run a CLI body, converting uncaught SimErrors into an error report on
 * stderr and a nonzero exit status — the single top-level handler that
 * preserves the old fatal()-style behaviour for command-line tools
 * while letting library callers recover.
 *
 * Exit-code contract: 0 = the body's own success code, 1 = a typed
 * SimError (bad configuration, corrupt input, ...), 2 = an unexpected
 * exception, 130 = CancelledError (the conventional SIGINT code) — a
 * cancelled run is resumable, not failed, and scripts can tell the
 * difference.
 */
int runTopLevel(const std::function<int()> &body);

} // namespace fo4::util

#endif // FO4_UTIL_STATUS_HH
