#include "util/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace fo4::util
{

namespace
{

/** "FO4 JouRNaL" + a newline so `head` shows binary-file damage fast. */
constexpr char kMagic[8] = {'F', 'O', '4', 'J', 'R', 'N', 'L', '\n'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kFrameBytes = 8; // u32 length + u32 crc

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
    putU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           static_cast<std::uint32_t>(p[1]) << 8 |
           static_cast<std::uint32_t>(p[2]) << 16 |
           static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t
getU64(const unsigned char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           static_cast<std::uint64_t>(getU32(p + 4)) << 32;
}

/**
 * Header layout (little-endian, 32 bytes):
 *   [0,8)   magic
 *   [8,12)  format version
 *   [12,16) flags (reserved, 0)
 *   [16,24) identity fingerprint
 *   [24,28) CRC32 of bytes [0,24)
 *   [28,32) reserved (0)
 */
void
encodeHeader(unsigned char (&h)[kHeaderBytes], std::uint64_t fingerprint)
{
    std::memset(h, 0, sizeof(h));
    std::memcpy(h, kMagic, sizeof(kMagic));
    putU32(h + 8, kJournalVersion);
    putU32(h + 12, 0);
    putU64(h + 16, fingerprint);
    putU32(h + 24, crc32(h, 24));
}

[[noreturn]] void
throwErrno(ErrorCode code, const std::string &what, const std::string &path)
{
    throw JournalError(code, strprintf("journal '%s': %s: %s",
                                       path.c_str(), what.c_str(),
                                       std::strerror(errno)));
}

int
openOrThrow(const std::string &path, int flags, mode_t mode = 0644)
{
    const int fd = ::open(path.c_str(), flags, mode);
    if (fd < 0)
        throwErrno(ErrorCode::JournalIo, "cannot open", path);
    return fd;
}

DiskFaultHook &
diskFaultHook()
{
    static DiskFaultHook hook;
    return hook;
}

void
writeAllOrThrow(int fd, const void *data, std::size_t size,
                const std::string &path)
{
    if (const Status st = writeAllStatus(fd, data, size, path);
        !st.isOk())
        throw JournalError(st.code(), st.message());
}

void
fsyncOrThrow(int fd, const std::string &path)
{
    if (::fsync(fd) != 0)
        throwErrno(ErrorCode::JournalIo, "fsync failed", path);
}

} // namespace

void
setDiskFaultHook(DiskFaultHook hook)
{
    diskFaultHook() = std::move(hook);
}

Status
writeAllStatus(int fd, const void *data, std::size_t size,
               const std::string &path)
{
    const std::size_t requested = size;
    const auto *p = static_cast<const unsigned char *>(data);

    if (const DiskFaultHook &hook = diskFaultHook()) {
        if (const std::optional<DiskFault> fault = hook(path)) {
            // Land the partial prefix for real (a torn record the
            // recovery reader must cope with), then fail typed.
            std::size_t landed = 0;
            while (landed < fault->shortWriteBytes && landed < size) {
                const ssize_t n = ::write(
                    fd, p + landed,
                    std::min(fault->shortWriteBytes, size) - landed);
                if (n <= 0)
                    break;
                landed += static_cast<std::size_t>(n);
            }
            return Status(
                ErrorCode::JournalIo,
                strprintf("'%s': write failed after %zu of %zu bytes: "
                          "%s (injected fault)",
                          path.c_str(), landed, requested,
                          std::strerror(fault->failErrno)));
        }
    }

    while (size > 0) {
        const ssize_t n = ::write(fd, p, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status(
                ErrorCode::JournalIo,
                strprintf("'%s': write failed after %zu of %zu bytes: "
                          "%s",
                          path.c_str(), requested - size, requested,
                          std::strerror(errno)));
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
    return Status::ok();
}

void
fsyncParentDirectory(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        throwErrno(ErrorCode::JournalIo, "cannot open directory", dir);
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok)
        throwErrno(ErrorCode::JournalIo, "directory fsync failed", dir);
}

std::uint32_t
crc32(const void *data, std::size_t size, std::uint32_t crc)
{
    // Standard reflected CRC-32 (polynomial 0xEDB88320), table built on
    // first use.
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c >> 1) ^ (0xEDB88320u & (0u - (c & 1u)));
            t[i] = c;
        }
        return t;
    }();

    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

bool
journalExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

JournalContents
readJournal(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwErrno(ErrorCode::JournalIo, "cannot open", path);

    std::string data;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            throwErrno(ErrorCode::JournalIo, "read failed", path);
        }
        if (n == 0)
            break;
        data.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    const auto *bytes =
        reinterpret_cast<const unsigned char *>(data.data());

    if (data.size() < kHeaderBytes) {
        throw JournalError(
            ErrorCode::JournalFormat,
            strprintf("journal '%s': truncated header (%zu of %zu bytes)",
                      path.c_str(), data.size(), kHeaderBytes));
    }
    if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
        throw JournalError(
            ErrorCode::JournalFormat,
            strprintf("journal '%s': bad magic (not a journal file)",
                      path.c_str()));
    }
    if (const std::uint32_t crc = getU32(bytes + 24);
        crc != crc32(bytes, 24)) {
        throw JournalError(
            ErrorCode::JournalCorrupt,
            strprintf("journal '%s': header CRC mismatch "
                      "(stored %08x, computed %08x)",
                      path.c_str(), crc, crc32(bytes, 24)));
    }
    if (const std::uint32_t version = getU32(bytes + 8);
        version != kJournalVersion) {
        throw JournalError(
            ErrorCode::JournalFormat,
            strprintf("journal '%s': format version %u, this build "
                      "speaks %u",
                      path.c_str(), version, kJournalVersion));
    }

    JournalContents contents;
    contents.fingerprint = getU64(bytes + 16);
    contents.validBytes = kHeaderBytes;

    std::size_t offset = kHeaderBytes;
    while (offset < data.size()) {
        // An incomplete trailing frame — length/CRC words or payload cut
        // short by a crash mid-append — is the one tolerated damage: the
        // record was never acknowledged, so dropping it loses nothing.
        if (data.size() - offset < kFrameBytes ||
            data.size() - offset - kFrameBytes <
                getU32(bytes + offset)) {
            contents.tornTail = true;
            break;
        }
        const std::uint32_t length = getU32(bytes + offset);
        const std::uint32_t stored = getU32(bytes + offset + 4);
        const unsigned char *payload = bytes + offset + kFrameBytes;
        // A complete frame whose payload fails its CRC is not a torn
        // append; it is bit rot (or an overwrite) inside acknowledged
        // data, and trusting anything after it would risk wrong results.
        if (const std::uint32_t computed = crc32(payload, length);
            computed != stored) {
            throw JournalError(
                ErrorCode::JournalCorrupt,
                strprintf("journal '%s': record %zu CRC mismatch at "
                          "offset %zu (stored %08x, computed %08x)",
                          path.c_str(), contents.records.size(), offset,
                          stored, computed));
        }
        contents.records.emplace_back(
            reinterpret_cast<const char *>(payload), length);
        offset += kFrameBytes + length;
        contents.validBytes = offset;
    }
    return contents;
}

JournalWriter::JournalWriter(int fd, std::string path, bool syncEveryRecord)
    : fd(fd), path(std::move(path)), syncEach(syncEveryRecord)
{
}

JournalWriter
JournalWriter::create(const std::string &path, std::uint64_t fingerprint,
                      bool syncEveryRecord)
{
    unsigned char header[kHeaderBytes];
    encodeHeader(header, fingerprint);

    // Header via tmp + rename: a crash leaves either the old state or a
    // complete new journal, never a file with a partial header.
    const std::string tmp = path + ".tmp";
    const int tmpFd =
        openOrThrow(tmp, O_CREAT | O_TRUNC | O_WRONLY);
    try {
        writeAllOrThrow(tmpFd, header, sizeof(header), tmp);
        fsyncOrThrow(tmpFd, tmp);
    } catch (...) {
        ::close(tmpFd);
        ::unlink(tmp.c_str());
        throw;
    }
    ::close(tmpFd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throwErrno(ErrorCode::JournalIo, "rename failed", path);
    }
    fsyncParentDirectory(path);

    return JournalWriter(openOrThrow(path, O_WRONLY | O_APPEND), path,
                         syncEveryRecord);
}

JournalWriter
JournalWriter::appendTo(const std::string &path,
                        const JournalContents &recovered,
                        bool syncEveryRecord)
{
    const int fd = openOrThrow(path, O_WRONLY);
    // Drop the torn tail (if any) so the file ends on a record boundary
    // before new appends land after it.
    if (::ftruncate(fd, static_cast<off_t>(recovered.validBytes)) != 0) {
        ::close(fd);
        throwErrno(ErrorCode::JournalIo, "truncate failed", path);
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        ::close(fd);
        throwErrno(ErrorCode::JournalIo, "seek failed", path);
    }
    return JournalWriter(fd, path, syncEveryRecord);
}

JournalWriter::JournalWriter(JournalWriter &&other) noexcept
    : fd(other.fd), path(std::move(other.path)), syncEach(other.syncEach)
{
    other.fd = -1;
}

JournalWriter &
JournalWriter::operator=(JournalWriter &&other) noexcept
{
    if (this != &other) {
        if (fd >= 0)
            ::close(fd);
        fd = other.fd;
        path = std::move(other.path);
        syncEach = other.syncEach;
        other.fd = -1;
    }
    return *this;
}

JournalWriter::~JournalWriter()
{
    if (fd >= 0)
        ::close(fd);
}

void
JournalWriter::append(std::string_view payload)
{
    if (const Status st = tryAppend(payload); !st.isOk())
        throw JournalError(st.code(), st.message());
}

Status
JournalWriter::tryAppend(std::string_view payload)
{
    FO4_ASSERT(fd >= 0, "append on a closed journal");
    FO4_ASSERT(payload.size() <= 0xFFFFFFFFu,
               "journal record too large (%zu bytes)", payload.size());
    // One frame, one write(): the kernel may still tear it across
    // sectors on a crash, but recovery handles exactly that case.
    std::string frame;
    frame.resize(kFrameBytes);
    auto *head = reinterpret_cast<unsigned char *>(frame.data());
    putU32(head, static_cast<std::uint32_t>(payload.size()));
    putU32(head + 4, crc32(payload.data(), payload.size()));
    frame.append(payload);
    if (const Status st =
            writeAllStatus(fd, frame.data(), frame.size(), path);
        !st.isOk())
        return st;
    if (syncEach)
        return trySync();
    return Status::ok();
}

void
JournalWriter::sync()
{
    FO4_ASSERT(fd >= 0, "sync on a closed journal");
    fsyncOrThrow(fd, path);
}

Status
JournalWriter::trySync()
{
    FO4_ASSERT(fd >= 0, "sync on a closed journal");
    if (::fsync(fd) != 0) {
        return Status(ErrorCode::JournalIo,
                      strprintf("'%s': fsync failed: %s", path.c_str(),
                                std::strerror(errno)));
    }
    return Status::ok();
}

void
JournalWriter::close()
{
    if (fd < 0)
        return;
    fsyncOrThrow(fd, path);
    ::close(fd);
    fd = -1;
}

} // namespace fo4::util
