/**
 * @file
 * Minimal CSV writer so bench binaries can optionally emit machine-readable
 * series (for replotting figures) alongside the human-readable tables,
 * plus a crash-safe file-backed variant (AtomicCsvFile) whose output
 * becomes visible all-at-once or not at all.
 */

#ifndef FO4_UTIL_CSV_HH
#define FO4_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

#include "util/status.hh"

namespace fo4::util
{

/** Streams rows to an ostream in RFC-4180-ish CSV (quotes when needed). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : out(os) {}

    void writeRow(const std::vector<std::string> &cells);

    /** Quote and escape a single field if it contains , " or newline. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out;
};

/**
 * Crash-safe CSV output file.  Rows accumulate in `<path>.tmp`; commit()
 * flushes, fsyncs and atomically renames onto `path`, so a reader (or a
 * rerun after a crash) never observes a half-written CSV — it sees either
 * the previous complete file or the new complete file.  Destroying an
 * uncommitted AtomicCsvFile removes the temporary (best effort).
 *
 * Failures to create, write, sync or rename throw
 * JournalError(ErrorCode::JournalIo) — the same durability error class
 * the write-ahead journal uses.  The try* variants return the same
 * failures as a typed Status instead, so a caller mid-sweep can treat a
 * full disk as "no CSV today" rather than an aborted run; writes go
 * through writeAllStatus and therefore honour the disk-fault hook.
 */
class AtomicCsvFile
{
  public:
    /** Open `<path>.tmp` for writing (truncating any stale leftover). */
    explicit AtomicCsvFile(std::string path);

    /** Discards the temporary if commit() was never reached. */
    ~AtomicCsvFile();

    AtomicCsvFile(const AtomicCsvFile &) = delete;
    AtomicCsvFile &operator=(const AtomicCsvFile &) = delete;

    void writeRow(const std::vector<std::string> &cells);

    /** writeRow() as a Status: ENOSPC/short writes come back typed.
     *  After a failure the temporary is suspect; commit() is refused. */
    Status tryWriteRow(const std::vector<std::string> &cells);

    /**
     * Make the file visible at its final path: flush, fsync, rename,
     * fsync the parent directory.  Call exactly once, after the last
     * row; no rows may be written afterwards.
     */
    void commit();

    /** commit() as a Status (no partial final file on failure: the
     *  rename only happens after a clean fsync of the temporary). */
    Status tryCommit();

    bool committed() const { return done; }

    /** Where rows land before commit() (exposed for tests). */
    const std::string &tempPath() const { return tmp; }

  private:
    std::string path;
    std::string tmp;
    int fd = -1;
    bool failed = false;
    bool done = false;
};

} // namespace fo4::util

#endif // FO4_UTIL_CSV_HH
