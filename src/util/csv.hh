/**
 * @file
 * Minimal CSV writer so bench binaries can optionally emit machine-readable
 * series (for replotting figures) alongside the human-readable tables.
 */

#ifndef FO4_UTIL_CSV_HH
#define FO4_UTIL_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace fo4::util
{

/** Streams rows to an ostream in RFC-4180-ish CSV (quotes when needed). */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : out(os) {}

    void writeRow(const std::vector<std::string> &cells);

    /** Quote and escape a single field if it contains , " or newline. */
    static std::string escape(const std::string &field);

  private:
    std::ostream &out;
};

} // namespace fo4::util

#endif // FO4_UTIL_CSV_HH
