#include "util/means.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace fo4::util
{

double
harmonicMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "harmonic mean of empty set");
    double denom = 0.0;
    for (double v : values) {
        FO4_ASSERT(v > 0.0, "harmonic mean requires positive values, got %f",
                   v);
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "arithmetic mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        FO4_ASSERT(v > 0.0, "geometric mean requires positive values, got %f",
                   v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

void
StreamingMoments::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
}

double
StreamingMoments::mean() const
{
    FO4_ASSERT(n > 0, "mean of an empty stream");
    return mu;
}

double
StreamingMoments::variance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
StreamingMoments::stddev() const
{
    return std::sqrt(variance());
}

double
StreamingMoments::min() const
{
    FO4_ASSERT(n > 0, "min of an empty stream");
    return lo;
}

double
StreamingMoments::max() const
{
    FO4_ASSERT(n > 0, "max of an empty stream");
    return hi;
}

P2Quantile::P2Quantile(double q) : q(q)
{
    FO4_ASSERT(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got %f", q);
}

void
P2Quantile::add(double x)
{
    // The first five observations are stored directly (heights double
    // as the sample buffer until the markers initialize).
    if (n < 5) {
        heights[n++] = x;
        if (n == 5) {
            std::sort(heights, heights + 5);
            for (int i = 0; i < 5; ++i)
                positions[i] = i + 1;
            desired[0] = 1.0;
            desired[1] = 1.0 + 2.0 * q;
            desired[2] = 1.0 + 4.0 * q;
            desired[3] = 3.0 + 2.0 * q;
            desired[4] = 5.0;
            increment[0] = 0.0;
            increment[1] = q / 2.0;
            increment[2] = q;
            increment[3] = (1.0 + q) / 2.0;
            increment[4] = 1.0;
        }
        return;
    }

    // Locate the cell containing x, extending the extremes if needed.
    int cell;
    if (x < heights[0]) {
        heights[0] = x;
        cell = 0;
    } else if (x >= heights[4]) {
        heights[4] = std::max(heights[4], x);
        cell = 3;
    } else {
        cell = 0;
        while (cell < 3 && x >= heights[cell + 1])
            ++cell;
    }

    for (int i = cell + 1; i < 5; ++i)
        positions[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired[i] += increment[i];
    ++n;

    // Nudge the three interior markers toward their desired positions,
    // adjusting heights by the piecewise-parabolic (P^2) prediction, or
    // linearly when the parabola would leave the bracketing heights.
    for (int i = 1; i <= 3; ++i) {
        const double d = desired[i] - positions[i];
        const bool right = d >= 1.0 && positions[i + 1] - positions[i] > 1.0;
        const bool left = d <= -1.0 && positions[i - 1] - positions[i] < -1.0;
        if (!right && !left)
            continue;
        const double s = right ? 1.0 : -1.0;
        const double np = positions[i + 1] - positions[i];
        const double pp = positions[i - 1] - positions[i];
        const double parabolic =
            heights[i] +
            s / (np - pp) *
                ((s - pp) * (heights[i + 1] - heights[i]) / np +
                 (np - s) * (heights[i] - heights[i - 1]) / -pp);
        if (heights[i - 1] < parabolic && parabolic < heights[i + 1]) {
            heights[i] = parabolic;
        } else {
            const int j = right ? i + 1 : i - 1;
            heights[i] += s * (heights[j] - heights[i]) /
                          (positions[j] - positions[i]);
        }
        positions[i] += s;
    }
}

double
P2Quantile::value() const
{
    FO4_ASSERT(n > 0, "quantile of an empty stream");
    if (n >= 5)
        return heights[2];
    // Exact quantile of the few stored samples: the nearest-rank value
    // of a sorted copy.
    double sorted[5];
    std::copy(heights, heights + n, sorted);
    std::sort(sorted, sorted + n);
    const double rank = q * static_cast<double>(n - 1);
    auto idx = static_cast<std::uint64_t>(rank + 0.5);
    if (idx >= n)
        idx = n - 1;
    return sorted[idx];
}

} // namespace fo4::util
