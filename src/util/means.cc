#include "util/means.hh"

#include <cmath>

#include "util/logging.hh"

namespace fo4::util
{

double
harmonicMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "harmonic mean of empty set");
    double denom = 0.0;
    for (double v : values) {
        FO4_ASSERT(v > 0.0, "harmonic mean requires positive values, got %f",
                   v);
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

double
arithmeticMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "arithmetic mean of empty set");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    FO4_ASSERT(!values.empty(), "geometric mean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        FO4_ASSERT(v > 0.0, "geometric mean requires positive values, got %f",
                   v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace fo4::util
