/**
 * @file
 * Write-ahead result journal: the durability primitive under the
 * crash-safe sweep engine (study::CheckpointedRunner).
 *
 * A journal is an append-only record log:
 *
 *     header (32 bytes): magic, format version, identity fingerprint,
 *                        header CRC32
 *     record:            u32 payload length | u32 payload CRC32 | payload
 *
 * Durability discipline:
 *
 *  - the header is created atomically: written to `<path>.tmp`,
 *    fsync'd, renamed over `<path>`, and the directory fsync'd — a
 *    crash during creation leaves either no journal or a complete one,
 *    never a half-written header;
 *  - each record is appended with a single write() and (by default)
 *    fsync'd before append() returns, so a record the caller has seen
 *    acknowledged survives a crash;
 *  - the recovery reader (readJournal) accepts the one state a crash
 *    can legitimately leave behind — a *torn trailing record*, i.e. an
 *    incomplete final frame — by discarding it and reporting where the
 *    valid prefix ends.  Damage anywhere else (a CRC mismatch on a
 *    complete record, a bad header) is not a crash artifact and is
 *    rejected with a typed JournalError: a journal is either trusted or
 *    refused, never silently patched.
 *
 * The identity fingerprint in the header binds the journal to the exact
 * inputs of the run that produced it; a resume against different inputs
 * is refused with ErrorCode::ResumeMismatch instead of silently merging
 * incompatible results (see study/checkpoint.hh).
 */

#ifndef FO4_UTIL_JOURNAL_HH
#define FO4_UTIL_JOURNAL_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace fo4::util
{

// ---------------------------------------------------------------------
// Disk-fault injection (test seam)
// ---------------------------------------------------------------------

/**
 * One injected disk fault: the write lands `shortWriteBytes` bytes for
 * real (modelling a partial write as the disk fills), then fails with
 * `failErrno`.  The default is an immediate ENOSPC.
 */
struct DiskFault
{
    int failErrno = 28; // ENOSPC
    std::size_t shortWriteBytes = 0;
};

/**
 * Process-wide hook consulted by every durable write path (journal
 * appends, atomic CSV rows, blob-store publication).  Return a fault to
 * inject for writes to `path`, nullopt to let the write proceed.  Test
 * seam only; pass nullptr to clear.  Not thread-safe against concurrent
 * writers — install before the writers start.
 */
using DiskFaultHook =
    std::function<std::optional<DiskFault>(const std::string &path)>;
void setDiskFaultHook(DiskFaultHook hook);

/**
 * Write all `size` bytes to `fd` (EINTR-safe), honouring the disk-fault
 * hook.  Returns Ok or a JournalIo Status naming `path`, the errno text
 * and how many bytes actually landed — the typed surface for ENOSPC and
 * short writes that the journal/CSV durability paths build on.
 */
Status writeAllStatus(int fd, const void *data, std::size_t size,
                      const std::string &path);

/**
 * Current journal format version (header field).  v2 widened the cell
 * payload with stall-attribution and occupancy fields; v1 journals are
 * refused with a typed JournalFormat error (rerun the sweep — cells are
 * cheap relative to silently resuming with zeroed observability).
 */
constexpr std::uint32_t kJournalVersion = 2;

/** CRC-32 (IEEE 802.3, reflected); chainable via `crc`. */
std::uint32_t crc32(const void *data, std::size_t size,
                    std::uint32_t crc = 0);

/**
 * fsync the directory containing `path`.  A rename makes a file visible
 * under its final name, but only the *directory entry's* durability —
 * this fsync — guarantees the published file cannot vanish on power
 * loss.  Every tmp→final rename in the repo (journal creation, atomic
 * CSV publication) ends with this call; throws
 * JournalError(JournalIo) on failure.
 */
void fsyncParentDirectory(const std::string &path);

/** Everything recovery learns from an existing journal. */
struct JournalContents
{
    /** Identity fingerprint the journal was created with. */
    std::uint64_t fingerprint = 0;
    /** Every intact record's payload, in append order. */
    std::vector<std::string> records;
    /** True if a torn trailing record was discarded during recovery. */
    bool tornTail = false;
    /** File offset where the valid prefix ends (end of the last intact
     *  record); appending resumes here, truncating any torn tail. */
    std::uint64_t validBytes = 0;
};

/**
 * Read and verify a journal.  Tolerates exactly one kind of damage —
 * an incomplete trailing frame, which a crash mid-append produces —
 * and throws JournalError for everything else:
 *
 *  - JournalIo: the file cannot be opened or read;
 *  - JournalFormat: truncated or non-journal header, or a format
 *    version this build does not speak;
 *  - JournalCorrupt: header CRC mismatch, or a CRC mismatch on a
 *    record whose frame is complete (mid-file bit rot, not a torn
 *    append).
 */
JournalContents readJournal(const std::string &path);

/** True if `path` exists (journal presence check for resume logic). */
bool journalExists(const std::string &path);

/**
 * Appender.  Create a fresh journal with create(), or continue a
 * recovered one with appendTo() — which first truncates the torn tail,
 * if any, so the file again ends on a record boundary.
 *
 * Thread safety: none; callers serialize (the sweep engine appends
 * under its own mutex).
 */
class JournalWriter
{
  public:
    /**
     * Atomically create `path` with a fresh header carrying
     * `fingerprint` (tmp-file + fsync + rename + directory fsync) and
     * open it for appending.  An existing file at `path` is replaced.
     * `syncEveryRecord` makes each append() fsync before returning
     * (durable but slower); pass false to batch syncs and call sync()
     * at flush points.
     */
    static JournalWriter create(const std::string &path,
                                std::uint64_t fingerprint,
                                bool syncEveryRecord = true);

    /**
     * Open an existing journal — already verified by readJournal, whose
     * result is passed in — for appending.  Truncates the file to
     * `recovered.validBytes` first, discarding a torn tail.
     */
    static JournalWriter appendTo(const std::string &path,
                                  const JournalContents &recovered,
                                  bool syncEveryRecord = true);

    JournalWriter(JournalWriter &&other) noexcept;
    JournalWriter &operator=(JournalWriter &&other) noexcept;
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Closes without a final sync; call close() for a durable end. */
    ~JournalWriter();

    /** Append one record (single write(); fsync if syncEveryRecord).
     *  Throws JournalError(JournalIo) on write/sync failure. */
    void append(std::string_view payload);

    /**
     * append() as a Status: ENOSPC, short writes and sync failures come
     * back typed instead of thrown, so a caller mid-sweep can degrade
     * (stop journaling, keep computing) rather than abort.  A failed
     * tryAppend may leave a torn record at the tail; recovery discards
     * it, so the journal's valid prefix stays trustworthy.
     */
    Status tryAppend(std::string_view payload);

    /** fsync the journal file. */
    void sync();

    /** sync() as a Status (same degradation contract as tryAppend). */
    Status trySync();

    /** sync and close; further appends are a caller bug. */
    void close();

  private:
    JournalWriter(int fd, std::string path, bool syncEveryRecord);

    int fd = -1;
    std::string path;
    bool syncEach = true;
};

} // namespace fo4::util

#endif // FO4_UTIL_JOURNAL_HH
