#include "util/net.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"
#include "util/status.hh"

namespace fo4::util
{

namespace
{

[[noreturn]] void
throwNet(const char *what)
{
    throw SvcError(ErrorCode::NetIo,
                   strprintf("%s: %s", what, std::strerror(errno)));
}

/**
 * Wait for `events` on `fd`.  Returns true when ready, false on
 * timeout; throws on poll errors.  timeoutMs <= 0 waits forever.
 */
bool
pollFd(int fd, short events, int timeoutMs)
{
    struct pollfd p = {};
    p.fd = fd;
    p.events = events;
    for (;;) {
        const int n = ::poll(&p, 1, timeoutMs <= 0 ? -1 : timeoutMs);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwNet("poll failed");
        }
        if (n == 0)
            return false;
        return true;
    }
}

} // namespace

namespace
{

/**
 * Connect one candidate address within `timeoutMs`.  Returns the
 * connected fd, or -1 with errno describing the failure.  Uses a
 * non-blocking connect + poll(POLLOUT) + SO_ERROR so the deadline
 * covers the TCP handshake itself, then restores blocking mode.
 */
int
connectOne(const struct addrinfo *ai, int timeoutMs)
{
    const int fd = ::socket(ai->ai_family, ai->ai_socktype,
                            ai->ai_protocol);
    if (fd < 0)
        return -1;

    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }

    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
        if (errno != EINPROGRESS) {
            const int saved = errno;
            ::close(fd);
            errno = saved;
            return -1;
        }
        struct pollfd p = {};
        p.fd = fd;
        p.events = POLLOUT;
        int n;
        do {
            n = ::poll(&p, 1, timeoutMs <= 0 ? -1 : timeoutMs);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) {
            const int saved = n == 0 ? ETIMEDOUT : errno;
            ::close(fd);
            errno = saved;
            return -1;
        }
        int soError = 0;
        socklen_t len = sizeof(soError);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soError, &len) != 0 ||
            soError != 0) {
            ::close(fd);
            errno = soError != 0 ? soError : ECONNREFUSED;
            return -1;
        }
    }

    if (::fcntl(fd, F_SETFL, flags) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        return -1;
    }
    return fd;
}

} // namespace

TcpStream
TcpStream::connect(const std::string &host, std::uint16_t port,
                   int timeoutMs)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    if (const int rc =
            ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
        rc != 0) {
        throw SvcError(ErrorCode::NetIo,
                       strprintf("cannot resolve '%s': %s", host.c_str(),
                                 ::gai_strerror(rc)));
    }

    int fd = -1;
    int lastErrno = ECONNREFUSED;
    for (const auto *ai = result; ai != nullptr; ai = ai->ai_next) {
        fd = connectOne(ai, timeoutMs);
        if (fd >= 0)
            break;
        lastErrno = errno;
    }
    ::freeaddrinfo(result);
    if (fd < 0) {
        throw SvcError(ErrorCode::NetIo,
                       strprintf("cannot connect to %s:%u: %s",
                                 host.c_str(), port,
                                 std::strerror(lastErrno)));
    }
    return TcpStream(fd);
}

TcpStream::TcpStream(TcpStream &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

TcpStream &
TcpStream::operator=(TcpStream &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

TcpStream::~TcpStream()
{
    close();
}

bool
TcpStream::readExact(void *buf, std::size_t size, int timeoutMs)
{
    FO4_ASSERT(fd_ >= 0, "read on an unconnected stream");
    auto *p = static_cast<unsigned char *>(buf);
    std::size_t got = 0;
    while (got < size) {
        if (!pollFd(fd_, POLLIN, timeoutMs)) {
            throw SvcError(ErrorCode::NetIo,
                           strprintf("read timed out after %d ms",
                                     timeoutMs));
        }
        const ssize_t n = ::recv(fd_, p + got, size - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwNet("read failed");
        }
        if (n == 0) {
            if (got == 0)
                return false; // orderly EOF between frames
            throw SvcError(
                ErrorCode::Protocol,
                strprintf("peer closed mid-frame (%zu of %zu bytes)",
                          got, size));
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

bool
TcpStream::waitReadable(int timeoutMs)
{
    FO4_ASSERT(fd_ >= 0, "wait on an unconnected stream");
    return pollFd(fd_, POLLIN, timeoutMs);
}

void
TcpStream::writeAll(const void *buf, std::size_t size, int timeoutMs)
{
    FO4_ASSERT(fd_ >= 0, "write on an unconnected stream");
    const auto *p = static_cast<const unsigned char *>(buf);
    while (size > 0) {
        // The write deadline: wait for the kernel to have buffer space
        // before each send, so a peer that stops draining its socket
        // surfaces as a typed timeout instead of a wedged thread.
        if (!pollFd(fd_, POLLOUT, timeoutMs)) {
            throw SvcError(ErrorCode::NetIo,
                           strprintf("write timed out after %d ms "
                                     "(%zu bytes unsent)",
                                     timeoutMs, size));
        }
        // MSG_NOSIGNAL: a vanished peer must surface as EPIPE -> a
        // typed NetIo error on this call, never SIGPIPE for the process.
        // MSG_DONTWAIT: POLLOUT only promises *some* space, so an
        // unbounded blocking send could still wedge past the deadline;
        // a short or refused send just loops back into the poll.
        const ssize_t n =
            ::send(fd_, p, size, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            throwNet("write failed");
        }
        p += n;
        size -= static_cast<std::size_t>(n);
    }
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpListener::TcpListener(std::uint16_t port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        throwNet("cannot create socket");

    // Restarting the daemon on the same port must not trip over
    // TIME_WAIT remnants of its previous incarnation.
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throwNet("cannot bind");
    }
    if (::listen(fd_, 64) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throwNet("cannot listen");
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throwNet("cannot read bound port");
    }
    boundPort = ntohs(addr.sin_port);
}

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(other.fd_.exchange(-1)), boundPort(other.boundPort)
{
}

TcpListener::~TcpListener()
{
    close();
}

std::optional<TcpStream>
TcpListener::accept(int timeoutMs)
{
    // Snapshot the fd once: a concurrent close() publishes -1 before
    // releasing the descriptor, so the worst a racing accept sees is a
    // shut-down socket, which reads as a quiet tick below.
    const int listenFd = fd_.load(std::memory_order_acquire);
    if (listenFd < 0)
        return std::nullopt;
    if (!pollFd(listenFd, POLLIN, timeoutMs))
        return std::nullopt;
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd < 0) {
        // A connection that was reset between poll and accept — or the
        // listener closed by a concurrent stop() — is a quiet tick.
        if (errno == EINTR || errno == ECONNABORTED || errno == EBADF ||
            errno == EINVAL) {
            return std::nullopt;
        }
        throwNet("accept failed");
    }
    return TcpStream(fd);
}

void
TcpListener::close()
{
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
        // Wake any accept() blocked in poll() before releasing the fd.
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
}

} // namespace fo4::util
