#include "util/random.hh"

#include <cmath>

#include "util/logging.hh"

namespace fo4::util
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

namespace
{

/** Stafford mix13, the SplitMix64 output finalizer: a bijective 64-bit
 *  mixer with full avalanche. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

// Distinct odd salts keep the three key-derivation paths (root, child,
// counter evaluation) from ever colliding structurally: child(i) of one
// stream cannot alias bits(j) of another merely because i and j are
// related.
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kRootSalt = 0x8e2f9d4b1c6a3e57ULL;
constexpr std::uint64_t kChildSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kCounterGamma = 0xd1342543de82ef95ULL;

} // namespace

RandomStream
RandomStream::root(std::uint64_t seed)
{
    return RandomStream(mix64(seed ^ kRootSalt));
}

RandomStream
RandomStream::child(std::uint64_t index) const
{
    return RandomStream(mix64(mix64(k ^ kChildSalt) + (index + 1) * kGolden));
}

std::uint64_t
RandomStream::bits(std::uint64_t counter) const
{
    return mix64(mix64(k) + (counter + 1) * kCounterGamma);
}

double
RandomStream::uniform(std::uint64_t counter) const
{
    return static_cast<double>(bits(counter) >> 11) * 0x1.0p-53;
}

double
RandomStream::normal(std::uint64_t draw, double mean, double sigma) const
{
    FO4_ASSERT(sigma >= 0.0, "normal() needs sigma >= 0, got %f", sigma);
    // Irwin-Hall n=12 (the Rng::normal approximation): only uniform
    // draws and IEEE additions, so the value is bit-stable everywhere
    // — and sigma == 0 yields exactly `mean`, because 0.0 * z == 0.0.
    double sum = 0.0;
    const std::uint64_t base = draw * 12;
    for (std::uint64_t i = 0; i < 12; ++i)
        sum += uniform(base + i);
    return mean + sigma * (sum - 6.0);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    FO4_ASSERT(bound > 0, "below() requires a positive bound");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<unsigned __int128>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    FO4_ASSERT(lo <= hi, "range(%lld, %lld) is empty",
               static_cast<long long>(lo), static_cast<long long>(hi));
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    FO4_ASSERT(p > 0.0 && p <= 1.0, "geometric p=%f out of (0,1]", p);
    if (p == 1.0)
        return 0;
    const double u = 1.0 - uniform(); // in (0, 1]
    return static_cast<std::uint64_t>(
        std::floor(std::log(u) / std::log1p(-p)));
}

double
Rng::normal(double mean, double stddev)
{
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += uniform();
    return mean + stddev * (sum - 6.0);
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    FO4_ASSERT(!weights.empty(), "empty weight vector");
    double total = 0.0;
    for (double w : weights) {
        FO4_ASSERT(w >= 0.0, "negative weight %f", w);
        total += w;
    }
    FO4_ASSERT(total > 0.0, "all weights are zero");

    const std::size_t n = weights.size();
    norm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        norm[i] = weights[i] / total;

    // Vose's alias method.
    prob.assign(n, 0.0);
    alias.assign(n, 0);
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = norm[i] * static_cast<double>(n);
        if (scaled[i] < 1.0)
            small.push_back(static_cast<std::uint32_t>(i));
        else
            large.push_back(static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s_idx = small.back();
        small.pop_back();
        const std::uint32_t l_idx = large.back();
        large.pop_back();
        prob[s_idx] = scaled[s_idx];
        alias[s_idx] = l_idx;
        scaled[l_idx] = (scaled[l_idx] + scaled[s_idx]) - 1.0;
        if (scaled[l_idx] < 1.0)
            small.push_back(l_idx);
        else
            large.push_back(l_idx);
    }
    for (std::uint32_t i : large)
        prob[i] = 1.0;
    for (std::uint32_t i : small)
        prob[i] = 1.0;
}

std::size_t
DiscreteSampler::sample(Rng &rng) const
{
    const std::size_t column = rng.below(prob.size());
    return rng.uniform() < prob[column] ? column : alias[column];
}

double
DiscreteSampler::probability(std::size_t i) const
{
    FO4_ASSERT(i < norm.size(), "index %zu out of range", i);
    return norm[i];
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    FO4_ASSERT(n > 0, "ZipfSampler requires n > 0");
    cdf.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf[k] = total;
    }
    for (double &v : cdf)
        v /= total;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    std::size_t lo = 0;
    std::size_t hi = cdf.size() - 1;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

} // namespace fo4::util
