#include "util/blob_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/status.hh"

namespace fo4::util
{

namespace
{

constexpr char kBlobMagic[8] = {'F', 'O', '4', 'B', 'L', 'O', 'B', '\n'};
constexpr std::size_t kBlobHeaderBytes = 32;

void
putU32(unsigned char *p, std::uint32_t v)
{
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void
putU64(unsigned char *p, std::uint64_t v)
{
    putU32(p, static_cast<std::uint32_t>(v));
    putU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t
getU32(const unsigned char *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
getU64(const unsigned char *p)
{
    return static_cast<std::uint64_t>(getU32(p)) |
           (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

/** One directory entry that is a real blob (never a .tmp leftover). */
struct BlobFile
{
    std::string name;
    std::uint64_t bytes = 0;
    // mtime, nanosecond resolution, for oldest-first eviction order.
    std::int64_t mtimeNs = 0;
};

bool
isTempName(const std::string &name)
{
    return name.find(".tmp.") != std::string::npos;
}

/** List real blobs under `dir`; false on a scan error. */
bool
scanBlobs(const std::string &dir, std::vector<BlobFile> &out)
{
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return false;
    while (struct dirent *e = ::readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == ".." || isTempName(name))
            continue;
        struct stat sb;
        const std::string full = dir + "/" + name;
        if (::stat(full.c_str(), &sb) != 0 || !S_ISREG(sb.st_mode))
            continue; // raced with an eviction/unlink: not an error
        out.push_back(
            {name, static_cast<std::uint64_t>(sb.st_size),
             static_cast<std::int64_t>(sb.st_mtim.tv_sec) * 1000000000 +
                 sb.st_mtim.tv_nsec});
    }
    ::closedir(d);
    return true;
}

/** Read the whole of `fd` into `out`; false on a read error. */
bool
readAll(int fd, std::string &out)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return true;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace

BlobStore::BlobStore(std::string dir, std::uint64_t cap,
                     std::string counterPrefix)
    : root(std::move(dir)), maxBytes(cap), prefix(std::move(counterPrefix))
{
    if (::mkdir(root.c_str(), 0777) != 0 && errno != EEXIST) {
        throw ConfigError(
            strprintf("cache directory '%s' cannot be created: %s",
                      root.c_str(), std::strerror(errno)));
    }
    struct stat sb;
    if (::stat(root.c_str(), &sb) != 0 || !S_ISDIR(sb.st_mode)) {
        throw ConfigError(strprintf(
            "cache directory '%s' is not a directory", root.c_str()));
    }
}

std::string
BlobStore::pathFor(const std::string &key) const
{
    return root + "/" + key + ".blob";
}

void
BlobStore::countDiskError()
{
    st.diskErrors.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(prefix + ".disk_error").inc();
}

void
BlobStore::countCorrupt()
{
    st.corrupt.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(prefix + ".corrupt").inc();
}

std::optional<std::string>
BlobStore::get(const std::string &key)
{
    const auto miss = [&]() -> std::optional<std::string> {
        st.misses.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global().counter(prefix + ".miss").inc();
        return std::nullopt;
    };
    const std::string path = pathFor(key);
    if (hooks.beforeRead)
        hooks.beforeRead(key, path);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        if (errno != ENOENT)
            countDiskError();
        return miss();
    }
    std::string raw;
    const bool readOk = readAll(fd, raw);
    ::close(fd);
    if (!readOk) {
        countDiskError();
        return miss();
    }
    // Verify the frame top to bottom; *any* mismatch quarantines the
    // file (unlink) so a rotten blob costs one recompute, not one
    // failed verification per lookup forever.
    const auto corruptMiss = [&]() -> std::optional<std::string> {
        countCorrupt();
        ::unlink(path.c_str()); // best effort; reader fds stay valid
        return miss();
    };
    if (raw.size() < kBlobHeaderBytes)
        return corruptMiss();
    const auto *head = reinterpret_cast<const unsigned char *>(raw.data());
    if (std::memcmp(head, kBlobMagic, sizeof(kBlobMagic)) != 0)
        return corruptMiss();
    const std::uint32_t version = getU32(head + 8);
    if (version != kBlobVersion) {
        // Version skew is a layout disagreement, not rot: leave the
        // file for whichever build speaks that version.
        return miss();
    }
    const std::uint32_t keyLen = getU32(head + 12);
    const std::uint64_t payloadLen = getU64(head + 16);
    const std::uint32_t payloadCrc = getU32(head + 24);
    std::uint32_t headCrc = crc32(head, 28);
    if (keyLen != key.size() ||
        raw.size() != kBlobHeaderBytes + keyLen + payloadLen)
        return corruptMiss();
    headCrc = crc32(raw.data() + kBlobHeaderBytes, keyLen, headCrc);
    if (getU32(head + 28) != headCrc)
        return corruptMiss();
    if (std::memcmp(raw.data() + kBlobHeaderBytes, key.data(), keyLen) !=
        0)
        return corruptMiss();
    const char *payload = raw.data() + kBlobHeaderBytes + keyLen;
    if (crc32(payload, payloadLen) != payloadCrc)
        return corruptMiss();
    // Bump mtime so the eviction order approximates LRU; purely an
    // optimisation, so a failure here is ignored.
    ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
    st.hits.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(prefix + ".hit").inc();
    return std::string(payload, payloadLen);
}

bool
BlobStore::evictToFit(std::uint64_t incomingBytes)
{
    if (maxBytes == 0)
        return true;
    std::vector<BlobFile> files;
    if (!scanBlobs(root, files)) {
        countDiskError();
        return false;
    }
    std::uint64_t total = incomingBytes;
    for (const auto &f : files)
        total += f.bytes;
    if (total <= maxBytes)
        return true;
    std::sort(files.begin(), files.end(),
              [](const BlobFile &a, const BlobFile &b) {
                  if (a.mtimeNs != b.mtimeNs)
                      return a.mtimeNs < b.mtimeNs;
                  return a.name < b.name; // deterministic tie-break
              });
    for (const auto &f : files) {
        if (total <= maxBytes)
            break;
        if (::unlink((root + "/" + f.name).c_str()) != 0 &&
            errno != ENOENT) {
            countDiskError();
            return false;
        }
        total -= f.bytes;
        st.evictions.fetch_add(1, std::memory_order_relaxed);
        MetricsRegistry::global().counter(prefix + ".evict").inc();
    }
    return total <= maxBytes;
}

bool
BlobStore::put(const std::string &key, std::string_view payload)
{
    std::lock_guard<std::mutex> lock(putMutex);
    const std::uint64_t recordBytes =
        kBlobHeaderBytes + key.size() + payload.size();
    if (maxBytes != 0 && recordBytes > maxBytes)
        return false; // would evict the whole store and still not fit
    if (!evictToFit(recordBytes))
        return false;

    std::string record;
    record.resize(kBlobHeaderBytes);
    auto *head = reinterpret_cast<unsigned char *>(record.data());
    std::memcpy(head, kBlobMagic, sizeof(kBlobMagic));
    putU32(head + 8, kBlobVersion);
    putU32(head + 12, static_cast<std::uint32_t>(key.size()));
    putU64(head + 16, payload.size());
    putU32(head + 24, crc32(payload.data(), payload.size()));
    putU32(head + 28,
           crc32(key.data(), key.size(), crc32(head, 28)));
    record += key;
    record.append(payload);

    const std::string path = pathFor(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
        countDiskError();
        return false;
    }
    const auto dropTmp = [&] {
        ::close(fd);
        ::unlink(tmp.c_str());
        countDiskError();
        return false;
    };
    std::optional<DiskFault> fault;
    if (hooks.onWrite)
        fault = hooks.onWrite(key);
    if (fault) {
        // Model the disk filling mid-record: land a prefix, then fail.
        const std::size_t partial =
            std::min(fault->shortWriteBytes, record.size());
        if (partial)
            (void)writeAllStatus(fd, record.data(), partial, tmp);
        return dropTmp();
    }
    if (!writeAllStatus(fd, record.data(), record.size(), tmp).isOk())
        return dropTmp();
    if (::fsync(fd) != 0)
        return dropTmp();
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        countDiskError();
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        countDiskError();
        return false;
    }
    try {
        fsyncParentDirectory(path);
    } catch (const JournalError &) {
        // The blob is readable already; only its power-loss durability
        // is in doubt — and a vanished cache entry is just a miss.
        countDiskError();
    }
    if (hooks.afterPublish)
        hooks.afterPublish(key, path);
    st.stores.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::global().counter(prefix + ".store").inc();
    return true;
}

void
BlobStore::remove(const std::string &key)
{
    ::unlink(pathFor(key).c_str());
}

std::uint64_t
BlobStore::sizeBytes() const
{
    std::vector<BlobFile> files;
    if (!scanBlobs(root, files))
        return 0;
    std::uint64_t total = 0;
    for (const auto &f : files)
        total += f.bytes;
    return total;
}

std::uint64_t
BlobStore::entries() const
{
    std::vector<BlobFile> files;
    if (!scanBlobs(root, files))
        return 0;
    return files.size();
}

} // namespace fo4::util
